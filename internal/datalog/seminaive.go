package datalog

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/hom"
	"guardedrules/internal/par"
)

// Planner selects the join-order strategy of the semi-naive engine.
type Planner int

const (
	// PlannerCost (the default) re-plans every work item each round from
	// the database's live cardinality statistics: greedy smallest-
	// estimate-first atom order with per-step access paths (index seek,
	// pre-sized hash probe, scan) chosen by hom.PlanBody.
	PlannerCost Planner = iota
	// PlannerGreedy keeps the legacy static order — most-bound-first,
	// fixed at Compile time, blind to cardinalities — while still
	// executing through the shared plan runner. It exists for ablation
	// benchmarks and differential tests.
	PlannerGreedy
)

// JoinStats counts planner activity; all fields are atomic, one instance
// may be shared by concurrent evaluations (the serving layer aggregates
// them into its /metrics snapshot).
type JoinStats struct {
	// RoundPlans counts join plans computed (per work item per round).
	RoundPlans atomic.Int64
	// HashTables counts hash-join tables built by the join cache.
	HashTables atomic.Int64
	// ProbeSteps counts plan steps executed via a hash-probe access path.
	ProbeSteps atomic.Int64
}

// Options configures the semi-naive evaluator.
type Options struct {
	// Workers is the number of goroutines evaluating join work items per
	// round; 0 means runtime.GOMAXPROCS(0), 1 forces sequential
	// evaluation. The derived fact set is identical for every worker
	// count: the database is read-only while workers run, plans are fixed
	// by the single writer before the fan-out, and the workers' buffers
	// are merged by the writer in work-item order.
	Workers int
	// MaxRounds bounds the rounds per stratum (0 = 1,000,000).
	MaxRounds int
	// Budget, when non-nil, governs the run: cancellation and deadline are
	// observed mid-stratum (workers drain between units and every
	// pollInterval join results; a canceled round's buffers are not
	// merged), and its ceilings override MaxRounds and cap derived facts.
	// MaxFacts is enforced per added fact during the merge — the partial
	// database never exceeds the ceiling, mirroring the chase. On
	// exhaustion EvalSemiNaiveOpts returns the partial database — every
	// fact merged so far — with a typed *budget.Error.
	Budget *budget.T
	// Planner selects the join-order strategy (default PlannerCost).
	Planner Planner
	// Stats, when non-nil, accumulates planner counters.
	Stats *JoinStats
}

func (o Options) workers() int {
	if o.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o Options) maxRounds() int {
	if o.MaxRounds == 0 {
		return 1_000_000
	}
	return o.MaxRounds
}

// ctempl is the compiled template of one work item, built once at
// Compile time and shared (immutably) across evaluations: either a
// round-0 item (hasPat false; rest is the full positive body) or a
// semi-naive item (pattern is the body atom that must match a delta
// fact, rest the remaining positive body in source order). Variable
// slots are scoped per template.
type ctempl struct {
	rule    *core.Rule
	hasPat  bool
	pattern hom.CAtom
	rest    []hom.CAtom
	neg     []hom.CAtom
	heads   []hom.CAtom
	nvars   int
	// patBound marks the slots bound before the first planned step: the
	// pattern's slots (none for round-0 templates).
	patBound []bool
	// greedy is the legacy most-bound-first order over rest, the
	// PlannerGreedy ablation's fixed join order.
	greedy []int
}

// compileTemplate compiles rule with body position pat as the delta
// pattern (pat < 0 for a round-0 template).
func compileTemplate(r *core.Rule, pat int) ctempl {
	body := r.PositiveBody()
	slots := make(map[core.Term]int)
	t := ctempl{rule: r}
	bound := make(core.TermSet)
	if pat >= 0 {
		t.hasPat = true
		t.pattern = hom.Compile(body[pat], slots)
		bound.AddAll(body[pat].AllVars())
	}
	var restAtoms []core.Atom
	for i, a := range body {
		if i == pat {
			continue
		}
		t.rest = append(t.rest, hom.Compile(a, slots))
		restAtoms = append(restAtoms, a)
	}
	for _, l := range r.Body {
		if l.Negated {
			t.neg = append(t.neg, hom.Compile(l.Atom, slots))
		}
	}
	for _, h := range r.Head {
		t.heads = append(t.heads, hom.Compile(h, slots))
	}
	t.nvars = len(slots)
	t.patBound = make([]bool, t.nvars)
	if pat >= 0 {
		for _, p := range t.pattern.Pos {
			if p.Slot >= 0 {
				t.patBound[p.Slot] = true
			}
		}
	}
	t.greedy = greedyOrder(restAtoms, bound)
	return t
}

// compileAuxTemplate compiles a maintenance template for rule r with an
// explicit pattern atom that is NOT a positive body position: a negated
// literal (block/unblock sweeps match it against added or deleted facts)
// or a head atom (rederivation matches it against a deleted fact and
// asks whether any body instantiation still derives it). rest is the
// FULL positive body; withHeads selects whether head atoms are compiled
// (block/unblock sweeps materialize heads, rederivation needs none).
func compileAuxTemplate(r *core.Rule, pat core.Atom, withHeads bool) ctempl {
	body := r.PositiveBody()
	slots := make(map[core.Term]int)
	t := ctempl{rule: r, hasPat: true}
	t.pattern = hom.Compile(pat, slots)
	bound := make(core.TermSet)
	bound.AddAll(pat.AllVars())
	for _, a := range body {
		t.rest = append(t.rest, hom.Compile(a, slots))
	}
	for _, l := range r.Body {
		if l.Negated {
			t.neg = append(t.neg, hom.Compile(l.Atom, slots))
		}
	}
	if withHeads {
		for _, h := range r.Head {
			t.heads = append(t.heads, hom.Compile(h, slots))
		}
	}
	t.nvars = len(slots)
	t.patBound = make([]bool, t.nvars)
	for _, p := range t.pattern.Pos {
		if p.Slot >= 0 {
			t.patBound[p.Slot] = true
		}
	}
	t.greedy = greedyOrder(body, bound)
	return t
}

// greedyOrder returns the legacy static join order as a permutation of
// atoms: each next atom has the most already-bound variables (ties:
// fewest unbound variables, then source position). bound is the variable
// set known before the first atom; it is not modified.
func greedyOrder(atoms []core.Atom, bound core.TermSet) []int {
	b := make(core.TermSet, len(bound))
	b.AddAll(bound)
	order := make([]int, 0, len(atoms))
	taken := make([]bool, len(atoms))
	for len(order) < len(atoms) {
		besti, bestBound, bestUnbound := -1, -1, 0
		for i, a := range atoms {
			if taken[i] {
				continue
			}
			nb, nu := 0, 0
			for v := range a.AllVars() {
				if b.Has(v) {
					nb++
				} else {
					nu++
				}
			}
			if besti == -1 || nb > bestBound || nb == bestBound && nu < bestUnbound {
				besti, bestBound, bestUnbound = i, nb, nu
			}
		}
		taken[besti] = true
		order = append(order, besti)
		b.AddAll(atoms[besti].AllVars())
	}
	return order
}

// citem is the per-evaluation instantiation of a template: the compiled
// atoms are deep-copied because Resolve writes constant ids into them
// (id resolution is per-database), and the plan is recomputed per round
// by the single writer from live statistics.
type citem struct {
	t       *ctempl
	pattern hom.CAtom
	rest    []hom.CAtom
	neg     []hom.CAtom
	heads   []hom.CAtom
	plan    hom.Plan
}

func cloneAtoms(src []hom.CAtom) []hom.CAtom {
	out := make([]hom.CAtom, len(src))
	for i, a := range src {
		a.Pos = append([]hom.CPos(nil), a.Pos...)
		out[i] = a
	}
	return out
}

func instantiate(ts []ctempl) []citem {
	out := make([]citem, len(ts))
	for i := range ts {
		t := &ts[i]
		c := citem{t: t, rest: cloneAtoms(t.rest), neg: cloneAtoms(t.neg), heads: cloneAtoms(t.heads)}
		if t.hasPat {
			c.pattern = t.pattern
			c.pattern.Pos = append([]hom.CPos(nil), t.pattern.Pos...)
		}
		out[i] = c
	}
	return out
}

// resolve re-resolves the compiled constants against the (frozen)
// database. Callers gate it on Database.InternEpoch: while no new term
// was interned, every resolution is unchanged and the call is skipped.
func (c *citem) resolve(db *database.Database) {
	if c.t.hasPat {
		c.pattern.Resolve(db)
	}
	for i := range c.rest {
		c.rest[i].Resolve(db)
	}
	for i := range c.neg {
		c.neg[i].Resolve(db)
	}
	for i := range c.heads {
		c.heads[i].Resolve(db)
	}
}

// replan recomputes the item's join plan from the database's current
// statistics and prepares the hash tables its probe steps need.
// Writer-only: workers see a fixed plan and read-only tables.
func (c *citem) replan(db *database.Database, planner Planner, jc *hom.JoinCache, js *JoinStats) {
	if planner == PlannerGreedy {
		c.plan = hom.PlanOrder(c.rest, c.t.greedy, c.t.patBound, db)
	} else {
		c.plan = hom.PlanBody(c.rest, c.t.patBound, db)
	}
	jc.Prepare(c.rest, &c.plan)
	if js != nil {
		js.RoundPlans.Add(1)
		for _, s := range c.plan.Steps {
			if s.Kind == hom.AccessProbe {
				js.ProbeSteps.Add(1)
			}
		}
	}
}

// patternOK reports whether the item's delta pattern resolved fully; a
// pattern with an uninterned constant matches no delta fact.
func (c *citem) patternOK() bool {
	for k := range c.pattern.Pos {
		if p := &c.pattern.Pos[k]; p.Slot < 0 && !p.OK {
			return false
		}
	}
	return true
}

// pollInterval is how many join results a worker processes between
// cancellation polls inside a single unit, bounding the drain latency of
// a unit with a huge delta shard.
const pollInterval = 64

// seqThreshold is the round size (delta facts) below which a round runs
// sequentially: goroutine fan-out costs more than the joins it splits.
const seqThreshold = 128

// emitter buffers the new head instantiations of one work unit. The
// frozen database's seen-set prefilters candidates in id space, and a
// packed-id local keyset drops within-unit re-derivations, so candidates
// are materialized to term atoms only when genuinely unseen. Remaining
// cross-unit duplicates are resolved by the single-writer merge.
type emitter struct {
	c       *citem
	st      *hom.State
	db      *database.Database
	tk      *budget.Tracker
	out     []core.Atom
	local   keyset
	scratch []uint32
	polls   int
}

// leaf is the complete-match callback; returning false aborts the
// enumeration (the unit's buffer is then discarded by the canceled run).
func (e *emitter) leaf() bool {
	if e.polls++; e.polls%pollInterval == 0 && e.tk.Canceled() {
		return false
	}
	c := e.c
	for i := range c.neg {
		ids, ok := e.st.PackIDs(e.scratch[:0], &c.neg[i])
		if ok && e.db.SeenIDs(c.neg[i].RK, ids) {
			return true
		}
	}
	for i := range c.heads {
		h := &c.heads[i]
		ids, ok := e.st.PackIDs(e.scratch[:0], h)
		if !ok {
			// A head constant not yet interned (or an unbound head
			// variable): certainly not in the database, but with no id key
			// to dedup on; the merge dedups it.
			e.out = append(e.out, e.st.Materialize(h))
			continue
		}
		if e.db.SeenIDs(h.RK, ids) || !e.local.add(uint32(i), ids) {
			continue
		}
		e.out = append(e.out, e.st.Materialize(h))
	}
	return true
}

// evalStratum computes the fixpoint of one stratum with a parallel
// semi-naive loop. Each round freezes the database; the single writer
// re-resolves compiled constants (only when the intern epoch moved),
// recomputes every live item's join plan from the now-current statistics
// and builds the hash tables the plans probe; then (rule ×
// delta-position × delta-shard) work items fan out over the worker pool
// — workers only read the database, the plans and the tables, and buffer
// candidate head atoms — and the writer merges the buffers in work-item
// order. The merge uses AddNotify so that ACDom facts derived from fresh
// head constants enter the next delta; without this, ACDom-reading rules
// in the same stratum would miss constants introduced mid-fixpoint.
//
// Negated literals are evaluated against the current database; callers
// guarantee stratification (the negated relations are fully computed, and
// Stratify's implicit head→ACDom edges extend the guarantee to ACDom).
//
// Cancellation protocol: workers poll the tracker between units and every
// pollInterval join results inside a unit, then drain; runUnits always
// waits for the pool, so no goroutine outlives the call. The buffers of a
// canceled round are discarded, never merged — the database then holds
// exactly the merged facts, a well-formed partial fixpoint.
func evalStratum(cs *compiledStratum, db *database.Database, opts Options, tk *budget.Tracker) error {
	workers := opts.workers()
	planner := opts.Planner
	js := opts.Stats
	jc := hom.NewJoinCache(db)
	prevBuilds := 0
	noteBuilds := func() {
		if js != nil && jc.Builds() != prevBuilds {
			js.HashTables.Add(int64(jc.Builds() - prevBuilds))
		}
		prevBuilds = jc.Builds()
	}

	// Round 0: full evaluation, one work unit per rule, planned over the
	// input statistics.
	r0 := instantiate(cs.round0)
	for i := range r0 {
		r0[i].resolve(db)
		r0[i].replan(db, planner, jc, js)
	}
	noteBuilds()
	bufs := make([][]core.Atom, len(r0))
	if err := par.RunUnits(len(r0), workers, tk.Canceled, func(u int) {
		_ = tk.Check() // checkpoint: counts toward FailAt injection
		c := &r0[u]
		em := &emitter{c: c, st: hom.NewState(db, c.t.nvars), db: db, tk: tk,
			scratch: make([]uint32, 0, 16)}
		em.st.SearchPlan(c.rest, &c.plan, jc, em.leaf)
		bufs[u] = em.out
	}); err != nil {
		// A contained worker panic fails the run before any merge: the
		// database is untouched by this round.
		return fmt.Errorf("datalog: %w", err)
	}

	items := instantiate(cs.items)
	return runDeltaRounds(items, db, opts, tk, jc, noteBuilds, bufs, nil, nil)
}

// runDeltaRounds is the merge-and-propagate loop of the semi-naive
// engine, shared by evalStratum and the incremental maintenance paths.
// bufs holds candidate head atoms to merge as the first delta (cross-unit
// duplicates and facts already present are dropped by the merge); force
// lists facts that are ALREADY in db but must additionally join the first
// round's delta — incremental insertion resumes a finished fixpoint by
// forcing the inserted facts, and DRed's insertion phase forces the
// rederived and net-added facts. onAdd, when non-nil, observes every fact
// the merge inserts (including derived ACDom facts), in merge order.
//
// The loop preserves the evalStratum contract: single-writer merges with
// per-fact ceiling enforcement, per-round re-resolution gated on the
// intern epoch, writer-side replanning from live statistics, and (item ×
// shard) fan-out over read-only snapshots, with budget checkpoints at
// every merge point and worker unit.
func runDeltaRounds(items []citem, db *database.Database, opts Options, tk *budget.Tracker, jc *hom.JoinCache, noteBuilds func(), bufs [][]core.Atom, force []core.Atom, onAdd func(core.Atom)) error {
	workers := opts.workers()
	planner := opts.Planner
	js := opts.Stats
	if noteBuilds == nil {
		noteBuilds = func() {}
	}
	maxRounds := budget.Cap(opts.Budget, func(b *budget.T) int { return b.MaxRounds }, opts.maxRounds())
	maxFacts := 0
	if opts.Budget != nil {
		maxFacts = opts.Budget.MaxFacts
	}

	// Resolve the forced facts to id tuples up front: they are in db, and
	// interning never un-assigns ids, so resolution cannot fail for a
	// present fact (an unresolvable one was never in db and is skipped).
	var forcedN map[core.RelKey]int
	var forcedIDs map[core.RelKey][]uint32
	nforced := 0
	if len(force) > 0 {
		forcedN = make(map[core.RelKey]int)
		forcedIDs = make(map[core.RelKey][]uint32)
		for _, a := range force {
			ids, ok := db.FactIDs(nil, a)
			if !ok || !db.SeenIDs(a.Key(), ids) {
				continue
			}
			rk := a.Key()
			forcedN[rk]++
			forcedIDs[rk] = append(forcedIDs[rk], ids...)
			nforced++
		}
	}

	itemsEpoch := -1
	for round := 0; ; round++ {
		tk.SetRounds(round)
		// Merge-point checkpoint: a canceled or expired run returns here
		// with the merged facts intact and this round's buffers discarded.
		if err := tk.Check(); err != nil {
			return err
		}
		if round > maxRounds {
			return fmt.Errorf("datalog: stratum exceeded %d rounds: %w",
				maxRounds, tk.Exhausted(budget.ErrRoundLimit))
		}
		// Single-writer merge; newly inserted facts — including derived
		// ACDom facts — form the next delta. The fact ceiling is enforced
		// per added fact, AddCost-style: a fact whose insertion (including
		// the ACDom facts it derives) would push the run past the ceiling
		// is never added, so the partial database never overshoots.
		used := tk.Usage().Facts
		deltaCount := make(map[core.RelKey]int)
		ndelta := 0
		note := func(a core.Atom) {
			deltaCount[a.Key()]++
			ndelta++
			if onAdd != nil {
				onAdd(a)
			}
		}
		for _, buf := range bufs {
			for _, a := range buf {
				if maxFacts > 0 && used+ndelta+db.AddCost(a) > maxFacts {
					tk.AddFacts(ndelta)
					return tk.Exhausted(budget.ErrFactLimit)
				}
				if _, err := db.AddNotify(a, note); err != nil {
					return fmt.Errorf("datalog: merge: %w", err)
				}
			}
		}
		tk.AddFacts(ndelta)
		if ndelta+nforced == 0 {
			return nil
		}
		// Freeze the round: re-resolve compiled constants (skipped when no
		// new term was interned — the intern epoch is unchanged, so every
		// resolution would come out identical), then slice each relation's
		// delta — the newly merged tail of its id-tuple array, prefixed by
		// any forced tuples (first round only).
		if e := db.InternEpoch(); e != itemsEpoch {
			for i := range items {
				items[i].resolve(db)
			}
			itemsEpoch = e
		}
		type group struct {
			n, w int
			ids  []uint32
		}
		groups := make(map[core.RelKey]group, len(deltaCount)+len(forcedN))
		for rk, k := range deltaCount {
			w := rk.Arity + rk.AnnArity
			all := db.IDTuples(rk)
			tail := all[len(all)-k*w:]
			if fn := forcedN[rk]; fn > 0 {
				comb := make([]uint32, 0, len(forcedIDs[rk])+len(tail))
				comb = append(append(comb, forcedIDs[rk]...), tail...)
				groups[rk] = group{n: k + fn, w: w, ids: comb}
				continue
			}
			groups[rk] = group{n: k, w: w, ids: tail}
		}
		for rk, fn := range forcedN {
			if _, dup := deltaCount[rk]; dup {
				continue
			}
			groups[rk] = group{n: fn, w: rk.Arity + rk.AnnArity, ids: forcedIDs[rk]}
		}
		total := ndelta + nforced
		forcedN, forcedIDs, nforced = nil, nil, 0
		// Re-plan the live items against the post-merge statistics, then
		// fan out (item × shard) units; shards stripe each item's delta
		// facts so a round dominated by one rule still parallelizes.
		shards := workers
		if total < seqThreshold {
			shards = 1
		}
		type unit struct {
			c     *citem
			shard int
		}
		var units []unit
		for i := range items {
			c := &items[i]
			g, found := groups[c.pattern.RK]
			if !found || !c.patternOK() {
				continue
			}
			c.replan(db, planner, jc, js)
			n := shards
			if g.n < n {
				n = g.n
			}
			for s := 0; s < n; s++ {
				units = append(units, unit{c, s})
			}
		}
		noteBuilds()
		bufs = make([][]core.Atom, len(units))
		if err := par.RunUnits(len(units), workers, tk.Canceled, func(u int) {
			_ = tk.Check() // checkpoint: counts toward FailAt injection
			c := units[u].c
			g := groups[c.pattern.RK]
			n := shards
			if g.n < n {
				n = g.n
			}
			em := &emitter{c: c, st: hom.NewState(db, c.t.nvars), db: db, tk: tk,
				scratch: make([]uint32, 0, 16)}
			st := em.st
			for j := units[u].shard; j < g.n; j += n {
				mark := st.Mark()
				matched := st.Match(&c.pattern, g.ids[j*g.w:(j+1)*g.w])
				if matched && !st.SearchPlan(c.rest, &c.plan, jc, em.leaf) {
					st.Unwind(mark)
					return // canceled: drain; the unit's buffer is discarded
				}
				st.Unwind(mark)
			}
			bufs[u] = em.out
		}); err != nil {
			return fmt.Errorf("datalog: %w", err)
		}
	}
}

// EvalSemiNaive computes the stratified fixpoint with the native
// semi-naive evaluator and default options (parallel across all CPUs,
// cost-based planning). It is the default engine behind Eval; the
// chase-based EvalViaChase remains available for the ablation benchmarks.
func EvalSemiNaive(th *core.Theory, d database.Store) (*database.Database, error) {
	return EvalSemiNaiveOpts(th, d, Options{})
}

// EvalSemiNaiveOpts is EvalSemiNaive with explicit options. On budget
// exhaustion (cancellation, deadline, or a ceiling of opts.Budget) it
// returns the partial database — all facts merged before exhaustion —
// together with a typed error satisfying errors.Is against the budget
// sentinels.
func EvalSemiNaiveOpts(th *core.Theory, d database.Store, opts Options) (*database.Database, error) {
	p, err := Compile(th)
	if err != nil {
		return nil, err
	}
	return p.Eval(d, opts)
}
