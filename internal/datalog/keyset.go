package datalog

// keyset is an open-addressing set of (tag, id tuple) keys, the
// worker-local duplicate filter of the semi-naive engine: tag is the
// head-atom index, the tuple the head's packed instantiation. Keys are
// stored packed in a flat arena — no string serialization, no per-entry
// allocation — which matters because in recursive rules the same new
// fact is typically re-derived many times per round. Zero value is ready
// to use.
type keyset struct {
	arena []uint32 // entries: [tag, w, id...]; offsets are 1-based
	table []int32  // 1-based arena offsets; 0 = empty slot
	n     int
}

const (
	ksOffset64 = 14695981039346656037
	ksPrime64  = 1099511628211
)

func ksHash(tag uint32, ids []uint32) uint64 {
	h := uint64(ksOffset64)
	h ^= uint64(tag)
	h *= ksPrime64
	for _, id := range ids {
		h ^= uint64(id)
		h *= ksPrime64
	}
	return h
}

// add inserts the key and reports whether it was new.
func (s *keyset) add(tag uint32, ids []uint32) bool {
	if 4*(s.n+1) >= 3*len(s.table) {
		s.grow()
	}
	mask := uint64(len(s.table) - 1)
	w := uint32(len(ids))
	for i := ksHash(tag, ids) & mask; ; i = (i + 1) & mask {
		off := s.table[i]
		if off == 0 {
			s.table[i] = int32(len(s.arena) + 1)
			s.arena = append(s.arena, tag, w)
			s.arena = append(s.arena, ids...)
			s.n++
			return true
		}
		e := s.arena[off-1:]
		if e[0] == tag && e[1] == w && equal32(e[2:2+w], ids) {
			return false
		}
	}
}

func equal32(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *keyset) grow() {
	ncap := 2 * len(s.table)
	if ncap < 16 {
		ncap = 16
	}
	nt := make([]int32, ncap)
	mask := uint64(ncap - 1)
	for _, off := range s.table {
		if off == 0 {
			continue
		}
		e := s.arena[off-1:]
		w := e[1]
		i := ksHash(e[0], e[2:2+w]) & mask
		for nt[i] != 0 {
			i = (i + 1) & mask
		}
		nt[i] = off
	}
	s.table = nt
}
