package datalog

import (
	"fmt"
	"runtime"
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/gen"
	"guardedrules/internal/parser"
)

// Table-driven edge cases of the stratum fixpoint. Every case is checked
// against the chase-based evaluator and, where given, against expected
// present/absent atoms, at worker counts 1 and GOMAXPROCS.
func TestEvalStratumEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		theory  string
		facts   string
		present []string
		absent  []string
	}{
		{
			name:    "empty positive body",
			theory:  `-> P(k). P(X) -> Q2(X).`,
			facts:   `Dummy(d).`,
			present: []string{"P(k)", "Q2(k)"},
		},
		{
			name: "empty positive body with negated literal",
			theory: `Seed(X) -> Blocked(b1).
				 not Blocked(b1) -> Fired(y1).
				 not Blocked(b2) -> Fired(y2).`,
			facts:   `Seed(s).`,
			present: []string{"Fired(y2)"},
			absent:  []string{"Fired(y1)"},
		},
		{
			name:    "multi-head rule",
			theory:  `E(X,Y) -> A(X), B(Y).`,
			facts:   `E(a,b).`,
			present: []string{"A(a)", "B(b)"},
		},
		{
			name: "multi-head rule spanning delta positions",
			// Both body atoms of the last rule are derived, so every
			// delta position must be tried; both heads must land.
			theory: `S(X) -> L(X). S(X) -> R2(X).
				 L(X), R2(X) -> Both1(X), Both2(X).`,
			facts:   `S(a). S(b).`,
			present: []string{"Both1(a)", "Both2(a)", "Both1(b)", "Both2(b)"},
		},
		{
			name: "multi-head feeding recursion",
			theory: `E(X,Y) -> T(X,Y), Rev(Y,X).
				 T(X,Y), T(Y,Z) -> T(X,Z).
				 Rev(X,Y), Rev(Y,Z) -> Rev(X,Z).`,
			facts:   `E(a,b). E(b,c).`,
			present: []string{"T(a,c)", "Rev(c,a)"},
			absent:  []string{"T(c,a)", "Rev(a,c)"},
		},
		{
			name: "same relation twice in body",
			theory: `E(X,Y) -> T(X,Y).
				 T(X,Y), T(Y,Z) -> T(X,Z).`,
			facts:   `E(a,b). E(b,c). E(c,d).`,
			present: []string{"T(a,d)"},
		},
		{
			name: "negation against lower stratum",
			theory: `E(X,Y) -> T(X,Y).
				 T(X,Y), T(Y,X) -> Sym(X).
				 Node(X), not Sym(X) -> Asym(X).`,
			facts:   `Node(a). Node(b). Node(c). E(a,b). E(b,a). E(b,c).`,
			present: []string{"Asym(c)"},
			absent:  []string{"Asym(a)", "Asym(b)"},
		},
		{
			name:    "constants in rule bodies",
			theory:  `E(a,Y) -> FromA(Y). E(X,Y), FromA(X) -> FromA(Y).`,
			facts:   `E(a,b). E(b,c). E(z,w).`,
			present: []string{"FromA(b)", "FromA(c)"},
			absent:  []string{"FromA(w)"},
		},
	}
	for _, c := range cases {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			t.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(t *testing.T) {
				th := parser.MustParseTheory(c.theory)
				d := database.FromAtoms(parser.MustParseFacts(c.facts))
				fix, err := EvalSemiNaiveOpts(th, d, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range c.present {
					a := parser.MustParseFacts(s + ".")[0]
					if !fix.Has(a) {
						t.Errorf("missing %s", s)
					}
				}
				for _, s := range c.absent {
					a := parser.MustParseFacts(s + ".")[0]
					if fix.Has(a) {
						t.Errorf("unexpected %s", s)
					}
				}
				ref, err := EvalViaChase(th, d)
				if err != nil {
					t.Fatal(err)
				}
				if ok, diff := database.SameGroundAtoms(fix, ref); !ok {
					t.Errorf("disagrees with chase evaluator: %s", diff)
				}
			})
		}
	}
}

// datalogOnly strips existential rules, leaving the Datalog fragment of a
// generated theory.
func datalogOnly(th *core.Theory) *core.Theory {
	out := core.NewTheory()
	for _, r := range th.Rules {
		if r.IsDatalog() {
			out.Add(r)
		}
	}
	return out
}

// Differential test over the random-theory corpus: the semi-naive
// evaluator (sequential and parallel) and the chase-based evaluator must
// derive exactly the same ground atoms, and the parallel run must render
// byte-identically to the sequential one.
func TestSemiNaiveDifferentialCorpus(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	for seed := int64(0); seed < 12; seed++ {
		theories := []*core.Theory{
			datalogOnly(gen.RandomGuardedTheory(8, seed)),
			datalogOnly(gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 8, Seed: seed})),
		}
		for ti, th := range theories {
			if len(th.Rules) == 0 {
				continue
			}
			d := gen.ABDatabase(8, seed)
			seq, err := EvalSemiNaiveOpts(th, d, Options{Workers: 1})
			if err != nil {
				t.Fatalf("seed %d theory %d: sequential: %v", seed, ti, err)
			}
			par, err := EvalSemiNaiveOpts(th, d, Options{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d theory %d: parallel: %v", seed, ti, err)
			}
			if seq.String() != par.String() {
				t.Fatalf("seed %d theory %d: parallel output differs from sequential", seed, ti)
			}
			ref, err := EvalViaChase(th, d)
			if err != nil {
				t.Fatalf("seed %d theory %d: via chase: %v", seed, ti, err)
			}
			if ok, diff := database.SameGroundAtoms(par, ref); !ok {
				t.Fatalf("seed %d theory %d: %s", seed, ti, diff)
			}
		}
	}
}

// Parallel evaluation of a workload large enough to engage the sharded
// fan-out must match the sequential result exactly. Run under -race this
// also exercises the frozen-database concurrency discipline.
func TestParallelMatchesSequentialLarge(t *testing.T) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
		T(X,X) -> Cyclic(X).
		Node(X), not Cyclic(X) -> Acyclic(X).
	`)
	d := gen.RandomGraph(60, 150, 7)
	seq, err := EvalSemiNaiveOpts(th, d, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := EvalSemiNaiveOpts(th, d, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if seq.String() != par.String() {
			t.Fatalf("workers=%d: output differs from sequential", workers)
		}
		if seq.Len() != par.Len() {
			t.Fatalf("workers=%d: fact count %d, want %d", workers, par.Len(), seq.Len())
		}
	}
}
