package datalog

import (
	"fmt"
	"strings"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// Magic sets: the classical goal-directed rewriting for Datalog. Given a
// program and a query atom with some arguments bound to constants, the
// rewriting produces a program whose bottom-up evaluation only derives
// facts relevant to the query — mimicking top-down resolution while
// keeping the semi-naive engine.
//
// The rewriting uses the standard left-to-right sideways information
// passing strategy (SIPS): a body position is bound if it holds a
// constant, a head-bound variable, or a variable bound by an earlier body
// atom.

// MagicResult is the output of MagicRewrite.
type MagicResult struct {
	// Program is the rewritten Datalog program (adorned IDB relations plus
	// magic relations; EDB atoms keep their names).
	Program *core.Theory
	// Seed is the magic seed fact for the query bindings.
	Seed core.Atom
	// QueryRel is the adorned relation answering the query; its arity
	// equals the original query relation's.
	QueryRel string
}

// MagicRewrite rewrites the negation-free Datalog program for the query
// atom (constants = bound arguments, variables = free). It returns an
// error on programs with negation or existential rules.
func MagicRewrite(th *core.Theory, query core.Atom) (*MagicResult, error) {
	idb := make(map[string]bool)
	for _, r := range th.Rules {
		if !r.IsDatalog() {
			return nil, fmt.Errorf("magic: rule %s has existential variables", r.Label)
		}
		if r.HasNegation() {
			return nil, fmt.Errorf("magic: rule %s has negation (unsupported)", r.Label)
		}
		for _, h := range r.Head {
			idb[h.Relation] = true
		}
	}
	if !idb[query.Relation] {
		return nil, fmt.Errorf("magic: query relation %s is not derived by the program", query.Relation)
	}
	qa := adornmentOf(query)
	m := &magicRewriter{
		th:    th,
		idb:   idb,
		done:  map[string]bool{},
		out:   core.NewTheory(),
		queue: []adornedPred{{query.Relation, qa}},
	}
	for len(m.queue) > 0 {
		p := m.queue[0]
		m.queue = m.queue[1:]
		key := p.rel + "/" + p.adornment
		if m.done[key] {
			continue
		}
		m.done[key] = true
		m.rewriteRulesFor(p)
	}
	// Seed: the magic fact carrying the query's bound constants.
	var bound []core.Term
	for i, t := range query.Args {
		if qa[i] == 'b' {
			bound = append(bound, t)
		}
	}
	return &MagicResult{
		Program:  core.StampGenerated(m.out, "magic-sets"),
		Seed:     core.NewAtom(magicName(query.Relation, qa), bound...),
		QueryRel: adornedName(query.Relation, qa),
	}, nil
}

// AnswerWithMagic rewrites, seeds, evaluates and extracts the query
// answers: the tuples of the adorned query relation.
func AnswerWithMagic(th *core.Theory, query core.Atom, d database.Store) ([][]core.Term, *database.Database, error) {
	return AnswerWithMagicOpts(th, query, d, Options{})
}

// AnswerWithMagicOpts is AnswerWithMagic with explicit engine options. On
// budget exhaustion the answers extracted from the partial fixpoint are
// returned (a sound under-approximation) alongside the typed error.
func AnswerWithMagicOpts(th *core.Theory, query core.Atom, d database.Store, opts Options) ([][]core.Term, *database.Database, error) {
	res, err := MagicRewrite(th, query)
	if err != nil {
		return nil, nil, err
	}
	seeded := d.Clone()
	seeded.Add(res.Seed)
	fix, evalErr := EvalSemiNaiveOpts(res.Program, seeded, opts)
	if evalErr != nil && (fix == nil || !budget.IsBudget(evalErr)) {
		return nil, nil, evalErr
	}
	// Filter: answers must match the query's bound constants.
	var out [][]core.Term
	for _, f := range fix.Facts(core.RelKey{Name: res.QueryRel, Arity: len(query.Args)}) {
		match := true
		for i, t := range query.Args {
			if t.IsConst() && f.Args[i] != t {
				match = false
				break
			}
		}
		if match {
			out = append(out, append([]core.Term(nil), f.Args...))
		}
	}
	return out, fix, evalErr
}

type adornedPred struct {
	rel       string
	adornment string
}

type magicRewriter struct {
	th    *core.Theory
	idb   map[string]bool
	done  map[string]bool
	out   *core.Theory
	queue []adornedPred
}

// adornmentOf computes the adornment of an atom: 'b' for constants (or
// variables in the given bound set), 'f' otherwise.
func adornmentOf(a core.Atom) string {
	var sb strings.Builder
	for _, t := range a.Args {
		if t.IsConst() {
			sb.WriteByte('b')
		} else {
			sb.WriteByte('f')
		}
	}
	return sb.String()
}

func adornedName(rel, adornment string) string { return rel + "__" + adornment }
func magicName(rel, adornment string) string   { return "Magic__" + rel + "__" + adornment }

// rewriteRulesFor emits, for every rule defining p, the guarded rewritten
// rule and the magic rules for its IDB body atoms.
func (m *magicRewriter) rewriteRulesFor(p adornedPred) {
	for _, r := range m.th.Rules {
		for _, h := range r.Head {
			if h.Relation != p.rel {
				continue
			}
			m.rewriteRule(r, h, p.adornment)
		}
	}
}

func (m *magicRewriter) rewriteRule(r *core.Rule, head core.Atom, adornment string) {
	// Bound variables: head positions adorned 'b'.
	bound := make(core.TermSet)
	var magicArgs []core.Term
	for i, t := range head.Args {
		if adornment[i] == 'b' {
			magicArgs = append(magicArgs, t)
			if t.IsVar() {
				bound.Add(t)
			}
		}
	}
	newBody := []core.Literal{core.Pos(core.NewAtom(magicName(head.Relation, adornment), magicArgs...))}
	// Left-to-right SIPS over the body.
	for _, l := range r.Body {
		a := l.Atom
		if m.idb[a.Relation] {
			// Adorn by current boundness.
			var sb strings.Builder
			var bArgs []core.Term
			for _, t := range a.Args {
				if t.IsConst() || (t.IsVar() && bound.Has(t)) {
					sb.WriteByte('b')
					bArgs = append(bArgs, t)
				} else {
					sb.WriteByte('f')
				}
			}
			sub := sb.String()
			// Magic rule: the bindings flowing into this subgoal.
			magicHead := core.NewAtom(magicName(a.Relation, sub), bArgs...)
			mr := &core.Rule{
				Body:  append([]core.Literal(nil), newBody...),
				Head:  []core.Atom{magicHead},
				Label: r.Label + "_magic_" + a.Relation,
			}
			m.out.Add(mr)
			m.queue = append(m.queue, adornedPred{a.Relation, sub})
			// The subgoal itself, adorned.
			ad := a.Clone()
			ad.Relation = adornedName(a.Relation, sub)
			newBody = append(newBody, core.Literal{Atom: ad, Negated: l.Negated})
		} else {
			newBody = append(newBody, l)
		}
		// Everything in this atom becomes bound downstream.
		for v := range a.Vars() {
			bound.Add(v)
		}
	}
	nh := head.Clone()
	nh.Relation = adornedName(head.Relation, adornment)
	m.out.Add(&core.Rule{Body: newBody, Head: []core.Atom{nh}, Label: r.Label + "_adorned"})
}
