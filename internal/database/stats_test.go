package database

import (
	"fmt"
	"testing"

	"guardedrules/internal/core"
)

func atom(rel string, consts ...string) core.Atom {
	ts := make([]core.Term, len(consts))
	for i, c := range consts {
		ts[i] = core.Const(c)
	}
	return core.NewAtom(rel, ts...)
}

// The planner statistics are exact and maintained incrementally: RelSize
// is the fact count, DistinctAt the distinct ids at one position, and
// both cover the derived ACDom relation like any other.
func TestStatsIncremental(t *testing.T) {
	d := New()
	rk := atom("R", "a", "b").Key()
	if d.RelSize(rk) != 0 || d.DistinctAt(rk, 0) != 0 {
		t.Fatal("empty database must report zero statistics")
	}
	d.Add(atom("R", "a", "b"))
	d.Add(atom("R", "a", "c"))
	d.Add(atom("R", "b", "c"))
	d.Add(atom("R", "a", "b")) // duplicate: no effect
	if got := d.RelSize(rk); got != 3 {
		t.Fatalf("RelSize = %d, want 3", got)
	}
	if got := d.DistinctAt(rk, 0); got != 2 { // a, b
		t.Fatalf("DistinctAt(0) = %d, want 2", got)
	}
	if got := d.DistinctAt(rk, 1); got != 2 { // b, c
		t.Fatalf("DistinctAt(1) = %d, want 2", got)
	}
	if got := d.DistinctAt(rk, 2); got != 0 {
		t.Fatalf("DistinctAt out of range = %d, want 0", got)
	}
	ack := core.NewAtom(core.ACDom, core.Const("a")).Key()
	if got := d.RelSize(ack); got != 3 { // a, b, c
		t.Fatalf("RelSize(ACDom) = %d, want 3", got)
	}
	if got := d.DistinctAt(ack, 0); got != 3 {
		t.Fatalf("DistinctAt(ACDom, 0) = %d, want 3", got)
	}
	// CountWithID agrees with the posting lists the planner divides by.
	id, ok := d.TermID(core.Const("a"))
	if !ok {
		t.Fatal("a not interned")
	}
	if got := d.CountWithID(rk, 0, id); got != 2 {
		t.Fatalf("CountWithID(R, 0, a) = %d, want 2", got)
	}
}

// InternEpoch changes exactly when a new term is interned: duplicate
// facts and facts over already-interned terms leave it unchanged, and it
// only grows.
func TestInternEpochChangesIffNewTerm(t *testing.T) {
	d := New()
	e0 := d.InternEpoch()
	d.Add(atom("R", "a", "b"))
	e1 := d.InternEpoch()
	if e1 <= e0 {
		t.Fatalf("epoch %d -> %d: new terms must move the epoch", e0, e1)
	}
	d.Add(atom("R", "a", "b")) // duplicate
	if d.InternEpoch() != e1 {
		t.Fatal("duplicate fact moved the epoch")
	}
	d.Add(atom("R", "b", "a")) // new fact, known terms
	if d.InternEpoch() != e1 {
		t.Fatal("fact over known terms moved the epoch")
	}
	d.InternTerm(core.Const("a")) // known term
	if d.InternEpoch() != e1 {
		t.Fatal("re-interning a known term moved the epoch")
	}
	d.InternTerm(core.Const("fresh"))
	if d.InternEpoch() <= e1 {
		t.Fatal("interning a fresh term must move the epoch")
	}
}

// SeenIDs and its byte-packed sibling SeenKey agree, and both respect
// tuple width.
func TestSeenIDsSeenKeyAgree(t *testing.T) {
	d := New()
	d.Add(atom("R", "a", "b"))
	d.Add(atom("S", "a"))
	rk := atom("R", "a", "b").Key()
	ida, _ := d.TermID(core.Const("a"))
	idb, _ := d.TermID(core.Const("b"))
	pack := func(ids ...uint32) []byte {
		var out []byte
		for _, id := range ids {
			out = append(out, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		return out
	}
	if !d.SeenIDs(rk, []uint32{ida, idb}) {
		t.Fatal("SeenIDs misses R(a,b)")
	}
	if !d.SeenKey(rk, pack(ida, idb)) {
		t.Fatal("SeenKey misses R(a,b)")
	}
	if d.SeenIDs(rk, []uint32{idb, ida}) || d.SeenKey(rk, pack(idb, ida)) {
		t.Fatal("reversed tuple reported as seen")
	}
	if d.SeenIDs(rk, []uint32{ida}) {
		t.Fatal("wrong-width tuple reported as seen")
	}
	if d.SeenIDs(atom("T", "a", "b").Key(), []uint32{ida, idb}) {
		t.Fatal("absent relation reported as seen")
	}
}

// The packed-id seen-set dedups across growth (rehashing) and handles
// the nullary edge case, where every fact has the same empty tuple.
func TestSeenSetDedupAndNullary(t *testing.T) {
	d := New()
	for i := 0; i < 200; i++ {
		if !d.Add(atom("R", fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1))) {
			t.Fatalf("fresh fact %d reported duplicate", i)
		}
	}
	for i := 0; i < 200; i++ {
		if d.Add(atom("R", fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1))) {
			t.Fatalf("duplicate fact %d admitted after rehash growth", i)
		}
	}
	rk := atom("R", "c0", "c1").Key()
	if d.RelSize(rk) != 200 {
		t.Fatalf("RelSize = %d, want 200", d.RelSize(rk))
	}
	n := New()
	if !n.Add(core.NewAtom("P")) {
		t.Fatal("first nullary fact rejected")
	}
	if n.Add(core.NewAtom("P")) {
		t.Fatal("nullary duplicate admitted")
	}
	if n.Len() != 1 {
		t.Fatalf("Len = %d, want 1", n.Len())
	}
	if !n.SeenIDs(core.NewAtom("P").Key(), nil) {
		t.Fatal("SeenIDs misses the nullary fact")
	}
}
