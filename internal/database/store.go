package database

import "guardedrules/internal/core"

// This file defines the storage-layer API as narrow capability facets.
// Engines (hom, datalog, chase, kbcache) accept these interfaces rather
// than the concrete *Database, so an alternative store — e.g. the
// append-only segment-file store in internal/store/segment — can back
// every engine unchanged. *Database is the canonical in-memory
// implementation; alternative stores are expected to preserve its
// semantics exactly (dense id space, insertion-order enumeration,
// ACDom bookkeeping), since engine determinism depends on them.

// Reader is the read surface of a fact store: point lookups, indexed
// scans, enumeration, and the derived active-domain bookkeeping queries.
// Enumeration order is insertion order per relation; implementations
// must preserve it — engines rely on it for byte-identical output.
type Reader interface {
	// Point membership.
	Has(a core.Atom) bool
	HasApplied(a core.Atom, s core.Subst) bool
	SeenKey(rk core.RelKey, key []byte) bool
	SeenIDs(rk core.RelKey, ids []uint32) bool
	AppliedKey(dst []byte, a core.Atom, s core.Subst) ([]byte, bool)
	FactIDs(dst []uint32, a core.Atom) ([]uint32, bool)

	// Id-space access (flat packed tuples and per-position postings).
	IDTuples(rk core.RelKey) []uint32
	ForEachIndexWithID(rk core.RelKey, pos int, id uint32, fn func(int) bool)
	IndexWithID(rk core.RelKey, pos int, id uint32) []int32

	// Term-space enumeration.
	Facts(rk core.RelKey) []core.Atom
	FactsWith(rk core.RelKey, pos int, t core.Term) []core.Atom
	FactsContaining(t core.Term) []core.Atom
	ForEachWith(rk core.RelKey, pos int, t core.Term, fn func(core.Atom) bool)
	ForEachWithID(rk core.RelKey, pos int, id uint32, fn func(core.Atom) bool)
	ForEachFact(rk core.RelKey, fn func(core.Atom) bool)
	CountWith(rk core.RelKey, pos int, t core.Term) int

	// Whole-store views.
	Relations() []core.RelKey
	Len() int
	All() []core.Atom
	UserFacts() []core.Atom
	GroundAtoms() []core.Atom
	Constants() []core.Term
	Terms() core.TermSet
	Nulls() []core.Term
	String() string

	// Active-domain bookkeeping (DESIGN.md §10).
	ACDomSupport(t core.Term) int
	ACDomPinned(t core.Term) bool
	TermOccursIn(rk core.RelKey, t core.Term) bool
}

// Writer is the mutation surface: idempotent adds with ACDom
// derivation, and retraction with refcounted ACDom cascade. AddCost
// reports the budget charge an Add of a would incur without mutating.
type Writer interface {
	Add(a core.Atom) bool
	AddErr(a core.Atom) (bool, error)
	AddNotify(a core.Atom, notify func(core.Atom)) (bool, error)
	Retract(a core.Atom) bool
	DeleteNotify(a core.Atom, notify func(core.Atom)) (bool, error)
	AddCost(a core.Atom) int
}

// StatsProvider is the planner's cardinality surface (hom.Stats plus
// the intern epoch used to gate cached constant re-resolution).
type StatsProvider interface {
	RelSize(rk core.RelKey) int
	DistinctAt(rk core.RelKey, pos int) int
	CountWithID(rk core.RelKey, pos int, id uint32) int
	InternEpoch() int
}

// Interner is the term↔id facet. Ids are dense uint32s assigned in
// first-intern order; implementations must keep that order stable
// across Clone and (for durable stores) across restarts.
type Interner interface {
	InternTerm(t core.Term) uint32
	TermID(t core.Term) (uint32, bool)
	Term(id uint32) core.Term
}

// Store is the full storage API engines program against. Clone returns
// an in-memory working copy with the identical id space; engines clone
// at entry and run their fixpoints on the copy, so any Store
// implementation — however it persists — serves every engine.
type Store interface {
	Reader
	Writer
	StatsProvider
	Interner
	Clone() *Database
}

// Compile-time checks that *Database satisfies every facet.
var (
	_ Reader        = (*Database)(nil)
	_ Writer        = (*Database)(nil)
	_ StatsProvider = (*Database)(nil)
	_ Interner      = (*Database)(nil)
	_ Store         = (*Database)(nil)
)
