package database

import (
	"fmt"
	"testing"

	"guardedrules/internal/core"
)

// Regression for the key-collision soundness bug: the old string dedup key
// serialized atoms without escaping, so R("a,0b") and R(a,b) packed to the
// same key and Has reported the absent atom as present. Interned id tuples
// are scoped by relation key (arity included), so these can never collide.
func TestNoCollisionAcrossArity(t *testing.T) {
	d := New()
	d.Add(core.NewAtom("R", core.Const("a,0b")))
	if d.Has(core.NewAtom("R", core.Const("a"), core.Const("b"))) {
		t.Error("R(a,b) reported present after adding R(\"a,0b\")")
	}
	if !d.Has(core.NewAtom("R", core.Const("a,0b"))) {
		t.Error("R(\"a,0b\") must be present")
	}
	// Same check with the separator on the other side.
	d2 := New()
	d2.Add(core.NewAtom("R", core.Const("a"), core.Const("b")))
	if d2.Has(core.NewAtom("R", core.Const("a,0b"))) {
		t.Error("R(\"a,0b\") reported present after adding R(a,b)")
	}
}

// Annotation and argument positions must never be conflated: R[x](y) and
// R(x,y) have different relation keys (annotation arity 1 vs 0).
func TestNoCollisionAcrossAnnotationBoundary(t *testing.T) {
	d := New()
	ann := core.Atom{Relation: "R", Annotation: []core.Term{core.Const("x")}, Args: []core.Term{core.Const("y")}}
	d.Add(ann)
	if d.Has(core.NewAtom("R", core.Const("x"), core.Const("y"))) {
		t.Error("R(x,y) reported present after adding R[x](y)")
	}
	if d.Has(core.NewAtom("R", core.Const("y"))) {
		t.Error("R(y) reported present after adding R[x](y)")
	}
	if !d.Has(ann) {
		t.Error("R[x](y) must be present")
	}
	// Bracket-like characters inside constant names must not fake an
	// annotation either.
	d3 := New()
	d3.Add(core.NewAtom("R[x]", core.Const("y")))
	if d3.Has(ann) {
		t.Error("relation name containing brackets must not collide with annotation")
	}
}

// Kinds are part of term identity: a constant and a null with the same
// name intern to different ids.
func TestInternDistinguishesKinds(t *testing.T) {
	d := New()
	d.Add(core.NewAtom("R", core.Const("n")))
	if d.Has(core.NewAtom("R", core.NewNull("n"))) {
		t.Error("null _:n must be distinct from constant n")
	}
}

func TestInternerRoundTrip(t *testing.T) {
	in := newInternTable()
	terms := []core.Term{
		core.Const("a"), core.NewNull("a"), core.Const("b"), core.Const(""),
	}
	ids := make([]uint32, len(terms))
	for i, tm := range terms {
		ids[i] = in.Intern(tm)
	}
	for i, tm := range terms {
		if got := in.Intern(tm); got != ids[i] {
			t.Errorf("re-intern of %v: id %d, want %d", tm, got, ids[i])
		}
		if got, ok := in.Lookup(tm); !ok || got != ids[i] {
			t.Errorf("lookup of %v: (%d,%v), want (%d,true)", tm, got, ok, ids[i])
		}
		if back := in.TermOf(ids[i]); back != tm {
			t.Errorf("TermOf(%d) = %v, want %v", ids[i], back, tm)
		}
	}
	if in.Len() != len(terms) {
		t.Errorf("Len = %d, want %d", in.Len(), len(terms))
	}
	if _, ok := in.Lookup(core.Const("never")); ok {
		t.Error("Lookup of never-interned term must report absent")
	}
}

func TestTermIDExposedOnDatabase(t *testing.T) {
	d := New()
	d.Add(core.NewAtom("R", core.Const("a"), core.Const("b")))
	id, ok := d.TermID(core.Const("a"))
	if !ok {
		t.Fatal("TermID must resolve a stored term")
	}
	if d.Term(id) != core.Const("a") {
		t.Error("Term must invert TermID")
	}
	rk := core.RelKey{Name: "R", Arity: 2}
	if d.CountWithID(rk, 0, id) != 1 {
		t.Error("CountWithID wrong")
	}
	n := 0
	d.ForEachWithID(rk, 0, id, func(core.Atom) bool { n++; return true })
	if n != 1 {
		t.Errorf("ForEachWithID visited %d facts, want 1", n)
	}
	if _, ok := d.TermID(core.Const("zzz")); ok {
		t.Error("TermID of absent term must report false")
	}
}

// AddNotify must report exactly the facts actually inserted: the atom and
// the ACDom facts of its fresh constants, and nothing on duplicates.
func TestAddNotifyReportsDerivedACDom(t *testing.T) {
	d := New()
	var got []string
	note := func(a core.Atom) { got = append(got, a.String()) }
	if added, err := d.AddNotify(core.NewAtom("R", core.Const("a"), core.NewNull("n1")), note); !added || err != nil {
		t.Fatalf("first insert = (%v, %v), must be new", added, err)
	}
	want := map[string]bool{"R(a,_:n1)": true, "ACDom(a)": true}
	if len(got) != len(want) {
		t.Fatalf("notified %v, want %v", got, want)
	}
	for _, s := range got {
		if !want[s] {
			t.Errorf("unexpected notification %s", s)
		}
	}
	got = nil
	if added, _ := d.AddNotify(core.NewAtom("R", core.Const("a"), core.NewNull("n1")), note); added {
		t.Error("duplicate must not be new")
	}
	if len(got) != 0 {
		t.Errorf("duplicate must not notify, got %v", got)
	}
	// A second fact over a known constant derives no new ACDom fact.
	got = nil
	d.AddNotify(core.NewAtom("S", core.Const("a")), note) //nolint:errcheck // ground atom
	if len(got) != 1 || got[0] != "S(a)" {
		t.Errorf("known constant must notify only the fact: %v", got)
	}
}

// Wide atoms exceed the stack key buffer and must still dedup correctly.
func TestWideAtoms(t *testing.T) {
	d := New()
	args := make([]core.Term, 40)
	for i := range args {
		args[i] = core.Const(fmt.Sprintf("c%d", i))
	}
	a := core.NewAtom("Wide", args...)
	if !d.Add(a) || d.Add(a) {
		t.Error("wide atom dedup broken")
	}
	if !d.Has(a) {
		t.Error("wide atom lookup broken")
	}
	args2 := append([]core.Term(nil), args...)
	args2[39] = core.Const("different")
	if d.Has(core.NewAtom("Wide", args2...)) {
		t.Error("wide atoms differing in the last position must be distinct")
	}
}
