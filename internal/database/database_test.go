package database

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"guardedrules/internal/core"
	"guardedrules/internal/parser"
)

func TestAddAndHas(t *testing.T) {
	d := New()
	a := core.NewAtom("R", core.Const("a"), core.Const("b"))
	if !d.Add(a) {
		t.Error("first Add must report new")
	}
	if d.Add(a) {
		t.Error("second Add must report duplicate")
	}
	if !d.Has(a) {
		t.Error("Has must find added atom")
	}
	if d.Has(core.NewAtom("R", core.Const("b"), core.Const("a"))) {
		t.Error("Has must distinguish argument order")
	}
}

func TestACDomMaintenance(t *testing.T) {
	d := New()
	d.Add(core.NewAtom("R", core.Const("a"), core.NewNull("n1")))
	if !d.Has(core.NewAtom(core.ACDom, core.Const("a"))) {
		t.Error("ACDom(a) must be derived")
	}
	if d.Has(core.NewAtom(core.ACDom, core.NewNull("n1"))) {
		t.Error("nulls must not enter ACDom")
	}
	cs := d.Constants()
	if len(cs) != 1 || cs[0] != core.Const("a") {
		t.Errorf("Constants wrong: %v", cs)
	}
	// ACDom facts themselves must not feed ACDom.
	d2 := New()
	d2.Add(core.NewAtom(core.ACDom, core.Const("z")))
	if len(d2.Constants()) != 0 {
		t.Error("explicit ACDom fact must not create active domain constants")
	}
}

func TestIndexLookups(t *testing.T) {
	d := FromAtoms(parser.MustParseFacts(`
		R(a,b). R(a,c). R(b,c). S(a).
	`))
	rk := core.RelKey{Name: "R", Arity: 2}
	if n := len(d.Facts(rk)); n != 3 {
		t.Errorf("Facts(R): %d", n)
	}
	withA := d.FactsWith(rk, 0, core.Const("a"))
	if len(withA) != 2 {
		t.Errorf("FactsWith(R,0,a): %v", withA)
	}
	if d.CountWith(rk, 1, core.Const("c")) != 2 {
		t.Error("CountWith wrong")
	}
	if len(d.FactsWith(core.RelKey{Name: "T", Arity: 1}, 0, core.Const("a"))) != 0 {
		t.Error("missing relation must return no facts")
	}
}

func TestAnnotatedFacts(t *testing.T) {
	d := New()
	a := core.Atom{Relation: "R", Annotation: []core.Term{core.Const("x")}, Args: []core.Term{core.Const("a")}}
	b := core.NewAtom("R", core.Const("a"))
	d.Add(a)
	if d.Has(b) {
		t.Error("annotated and plain atoms must be distinct")
	}
	d.Add(b)
	if d.Len() != 4 { // R[x](a), R(a), ACDom(x), ACDom(a)
		t.Errorf("Len: %d", d.Len())
	}
	// Index must cover annotation positions (flat position 1 here).
	rk := a.Key()
	if len(d.FactsWith(rk, 1, core.Const("x"))) != 1 {
		t.Error("annotation position not indexed")
	}
}

func TestNonGroundRejected(t *testing.T) {
	d := New()
	if d.Add(core.NewAtom("R", core.Var("x"))) {
		t.Error("Add of non-ground atom must report false")
	}
	added, err := d.AddErr(core.NewAtom("R", core.Var("x")))
	if added || !errors.Is(err, ErrNotGround) {
		t.Errorf("AddErr of non-ground atom = (%v, %v), want (false, ErrNotGround)", added, err)
	}
	if d.Len() != 0 {
		t.Errorf("rejected atom must not be inserted, Len=%d", d.Len())
	}
	if _, err := d.AddErr(core.NewAtom("R", core.Const("a"))); err != nil {
		t.Errorf("AddErr of ground atom = %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := FromAtoms(parser.MustParseFacts(`R(a,b).`))
	c := d.Clone()
	c.Add(core.NewAtom("S", core.Const("z")))
	if d.Has(core.NewAtom("S", core.Const("z"))) {
		t.Error("Clone must be independent")
	}
	if !c.Has(core.NewAtom("R", core.Const("a"), core.Const("b"))) {
		t.Error("Clone must copy facts")
	}
}

func TestRestrictAndGroundAtoms(t *testing.T) {
	d := New()
	d.Add(core.NewAtom("R", core.Const("a"), core.NewNull("n")))
	d.Add(core.NewAtom("S", core.Const("a")))
	r := d.Restrict(func(k core.RelKey) bool { return k.Name == "S" })
	if r.Has(core.NewAtom("R", core.Const("a"), core.NewNull("n"))) {
		t.Error("Restrict must drop filtered relations")
	}
	ga := d.GroundAtoms()
	if len(ga) != 1 || ga[0].Relation != "S" {
		t.Errorf("GroundAtoms must exclude atoms with nulls: %v", ga)
	}
}

func TestSameGroundAtoms(t *testing.T) {
	a := FromAtoms(parser.MustParseFacts(`R(a,b). S(c).`))
	b := FromAtoms(parser.MustParseFacts(`S(c). R(a,b).`))
	if ok, _ := SameGroundAtoms(a, b); !ok {
		t.Error("equal databases must compare equal")
	}
	b.Add(core.NewAtom("T", core.Const("z")))
	if ok, diff := SameGroundAtoms(a, b); ok || diff == "" {
		t.Error("difference must be reported")
	}
}

// Property: Add/Has agree with a naive map-based implementation.
func TestDatabaseAgainstNaiveModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(n uint8) bool {
		d := New()
		naive := map[string]bool{}
		consts := []core.Term{core.Const("a"), core.Const("b"), core.Const("c")}
		for i := 0; i < int(n%64)+1; i++ {
			a := core.NewAtom("R", consts[rng.Intn(3)], consts[rng.Intn(3)])
			d.Add(a)
			naive[a.String()] = true
		}
		rk := core.RelKey{Name: "R", Arity: 2}
		if len(d.Facts(rk)) != len(naive) {
			return false
		}
		for _, x := range consts {
			for _, y := range consts {
				a := core.NewAtom("R", x, y)
				if d.Has(a) != naive[a.String()] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTermsAndNulls(t *testing.T) {
	d := New()
	d.Add(core.NewAtom("R", core.Const("a"), core.NewNull("n1")))
	d.Add(core.NewAtom("S", core.NewNull("n2")))
	ns := d.Nulls()
	if len(ns) != 2 {
		t.Errorf("Nulls: %v", ns)
	}
	ts := d.Terms()
	if len(ts) != 3 {
		t.Errorf("Terms: %v", ts)
	}
}

func TestForEachWithAndFact(t *testing.T) {
	d := FromAtoms(parser.MustParseFacts(`R(a,b). R(a,c). R(b,c).`))
	rk := core.RelKey{Name: "R", Arity: 2}
	count := 0
	d.ForEachWith(rk, 0, core.Const("a"), func(core.Atom) bool {
		count++
		return true
	})
	if count != 2 {
		t.Errorf("ForEachWith: %d", count)
	}
	// Early stop.
	count = 0
	d.ForEachFact(rk, func(core.Atom) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("ForEachFact early stop: %d", count)
	}
	// Missing relation: no calls, no panic.
	d.ForEachWith(core.RelKey{Name: "Z", Arity: 1}, 0, core.Const("a"), func(core.Atom) bool {
		t.Error("must not be called")
		return true
	})
}
