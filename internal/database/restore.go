package database

import "guardedrules/internal/core"

// Restore hooks for durable Store implementations (internal/store/segment).
// A snapshot of a Database is a pure state dump: terms in id order, facts
// per relation in enumeration order, ACDom support counts, and the pin
// set. Loading a dump must not re-run the ACDom derivation of AddNotify —
// derivation order and swap-remove history are already baked into the
// dumped enumeration orders — so these methods write the state back
// directly. They are not part of the Store interface: engines never call
// them.

// RestoreFact inserts a ground fact without any ACDom side effects: no
// support counting, no derived ACDom insertion, no pinning. It reports
// whether the fact was absent. Callers are responsible for restoring
// support counts (SetACDomSupport) and pins (PinACDom) alongside.
func (d *Database) RestoreFact(a core.Atom) bool {
	return d.insert(a)
}

// SetACDomSupport sets the ACDom support count of t, overwriting the
// derived refcount. A count of zero removes the entry.
func (d *Database) SetACDomSupport(t core.Term, n int) {
	if n <= 0 {
		delete(d.acdom, t)
		return
	}
	d.acdom[t] = n
}

// PinACDom marks ACDom(t) as explicitly added: it survives the loss of
// its last supporting occurrence. The ACDom fact itself is not inserted;
// restore it with RestoreFact.
func (d *Database) PinACDom(t core.Term) {
	if d.acdomX == nil {
		d.acdomX = make(map[core.Term]bool)
	}
	d.acdomX[t] = true
}
