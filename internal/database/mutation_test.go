package database

import (
	"fmt"
	"math/rand"
	"testing"

	"guardedrules/internal/core"
)

// rebuild re-inserts every user fact of d into a fresh database — the
// reference a mutated database must coincide with.
func rebuild(d *Database) *Database {
	out := New()
	for _, a := range d.UserFacts() {
		out.Add(a)
	}
	for tm := range d.acdomX {
		out.Add(core.NewAtom(core.ACDom, tm))
	}
	return out
}

// checkConsistent verifies the full index invariant set of d against a
// from-scratch rebuild: same String, same sizes, same per-position
// distinct counts and posting lists, working Has/SeenIDs for every fact,
// and no stale entries for removed facts.
func checkConsistent(t *testing.T, d *Database) {
	t.Helper()
	ref := rebuild(d)
	if got, want := d.String(), ref.String(); got != want {
		t.Fatalf("String mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if d.Len() != ref.Len() {
		t.Fatalf("Len = %d, rebuild = %d", d.Len(), ref.Len())
	}
	if got, want := len(d.Relations()), len(ref.Relations()); got != want {
		t.Fatalf("Relations count = %d, rebuild = %d", got, want)
	}
	for _, rk := range d.Relations() {
		if d.RelSize(rk) != ref.RelSize(rk) {
			t.Fatalf("%v: RelSize = %d, rebuild = %d", rk, d.RelSize(rk), ref.RelSize(rk))
		}
		w := rk.Arity + rk.AnnArity
		for p := 0; p < w; p++ {
			if d.DistinctAt(rk, p) != ref.DistinctAt(rk, p) {
				t.Fatalf("%v pos %d: DistinctAt = %d, rebuild = %d", rk, p, d.DistinctAt(rk, p), ref.DistinctAt(rk, p))
			}
		}
		facts := d.Facts(rk)
		for ix, a := range facts {
			if !d.Has(a) {
				t.Fatalf("stored fact %s not found by Has", a)
			}
			ids, ok := d.FactIDs(nil, a)
			if !ok || !d.SeenIDs(rk, ids) {
				t.Fatalf("stored fact %s not found by SeenIDs", a)
			}
			// Every posting list containing ix must be ascending and
			// actually contain ix at the right id.
			for p := 0; p < w; p++ {
				list := d.IndexWithID(rk, p, ids[p])
				found := false
				for k, o := range list {
					if k > 0 && list[k-1] >= o {
						t.Fatalf("%v pos %d id %d: posting list not ascending: %v", rk, p, ids[p], list)
					}
					if int(o) == ix {
						found = true
					}
				}
				if !found {
					t.Fatalf("%v pos %d: ordinal %d of %s missing from posting list", rk, p, ix, a)
				}
			}
		}
	}
	// The active domain must match the rebuild exactly.
	gotC, wantC := d.Constants(), ref.Constants()
	if len(gotC) != len(wantC) {
		t.Fatalf("Constants = %v, rebuild = %v", gotC, wantC)
	}
	for i := range gotC {
		if gotC[i] != wantC[i] {
			t.Fatalf("Constants = %v, rebuild = %v", gotC, wantC)
		}
	}
}

func TestRetractBasic(t *testing.T) {
	d := New()
	d.Add(atom("R", "a", "b"))
	d.Add(atom("R", "b", "c"))
	d.Add(atom("S", "a"))
	if !d.Retract(atom("R", "a", "b")) {
		t.Fatal("retract of present fact reported false")
	}
	if d.Retract(atom("R", "a", "b")) {
		t.Fatal("second retract reported true")
	}
	if d.Has(atom("R", "a", "b")) {
		t.Fatal("retracted fact still present")
	}
	if !d.Has(atom("R", "b", "c")) || !d.Has(atom("S", "a")) {
		t.Fatal("unrelated facts lost")
	}
	checkConsistent(t, d)
}

func TestRetractLastFactDropsRelation(t *testing.T) {
	d := New()
	d.Add(atom("R", "a"))
	d.Add(atom("S", "a"))
	d.Retract(atom("R", "a"))
	for _, rk := range d.Relations() {
		if rk.Name == "R" {
			t.Fatal("empty relation R still listed")
		}
	}
	checkConsistent(t, d)
}

// TestRetractACDomRefcount pins the ACDom maintenance contract under
// deletion: a derived ACDom fact dies exactly when the last occurrence
// of its constant dies, and survives while any other fact mentions it.
func TestRetractACDomRefcount(t *testing.T) {
	d := New()
	d.Add(atom("R", "a", "b"))
	d.Add(atom("S", "b"))

	d.Retract(atom("R", "a", "b"))
	if d.Has(atom(core.ACDom, "a")) {
		t.Fatal("ACDom(a) should die with its only support")
	}
	if !d.Has(atom(core.ACDom, "b")) {
		t.Fatal("ACDom(b) must survive: S(b) still supports it")
	}
	d.Retract(atom("S", "b"))
	if d.Has(atom(core.ACDom, "b")) {
		t.Fatal("ACDom(b) should die with its last support")
	}
	if d.Len() != 0 {
		t.Fatalf("database not empty after all retractions: %d facts", d.Len())
	}
	checkConsistent(t, d)
}

// Duplicate occurrences of a constant inside one fact must count with
// multiplicity, or the add/delete counts desynchronize.
func TestRetractACDomDuplicateOccurrences(t *testing.T) {
	d := New()
	d.Add(atom("R", "a", "a"))
	d.Add(atom("S", "a"))
	d.Retract(atom("R", "a", "a"))
	if !d.Has(atom(core.ACDom, "a")) {
		t.Fatal("ACDom(a) lost while S(a) still supports it")
	}
	d.Retract(atom("S", "a"))
	if d.Has(atom(core.ACDom, "a")) {
		t.Fatal("ACDom(a) should be gone")
	}
	checkConsistent(t, d)
}

// DeleteNotify must report the fact and every ACDom fact that died with
// it, mirroring AddNotify.
func TestDeleteNotify(t *testing.T) {
	d := New()
	d.Add(atom("R", "a", "b"))
	d.Add(atom("S", "b"))
	var got []string
	if removed, err := d.DeleteNotify(atom("R", "a", "b"), func(a core.Atom) {
		got = append(got, a.String())
	}); err != nil || !removed {
		t.Fatalf("DeleteNotify = %v, %v", removed, err)
	}
	want := []string{"R(a,b)", core.ACDom + "(a)"}
	if len(got) != len(want) {
		t.Fatalf("notifications = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("notifications = %v, want %v", got, want)
		}
	}
}

func TestDeleteNotifyNonGround(t *testing.T) {
	d := New()
	if _, err := d.DeleteNotify(core.NewAtom("R", core.Var("X")), nil); err == nil {
		t.Fatal("expected ErrNotGround")
	}
}

// An explicitly added ACDom fact is pinned: it survives the death of
// every supporting occurrence. A derived one cannot be retracted while
// supported.
func TestRetractExplicitACDom(t *testing.T) {
	d := New()
	d.Add(atom(core.ACDom, "a"))
	d.Add(atom("R", "a"))
	d.Retract(atom("R", "a"))
	if !d.Has(atom(core.ACDom, "a")) {
		t.Fatal("explicit ACDom(a) must survive its supports")
	}

	d2 := New()
	d2.Add(atom("R", "a"))
	if d2.Retract(atom(core.ACDom, "a")) {
		t.Fatal("derived ACDom fact must not be directly retractable while supported")
	}
	if !d2.Has(atom(core.ACDom, "a")) {
		t.Fatal("derived ACDom(a) lost")
	}
}

// TestRetractRandomized drives a random add/retract interleaving and
// checks the full index invariants after every operation batch. This is
// the torture test for swap-remove ordinal bookkeeping, posting-list
// order, seen-set backshift deletion and ACDom refcounts.
func TestRetractRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := New()
	var live []core.Atom
	names := []string{"a", "b", "c", "d", "e", "f,g", "h(", "", "x\x00y"}
	rels := []string{"R", "S", "T"}
	randAtom := func() core.Atom {
		rel := rels[rng.Intn(len(rels))]
		n := 1 + rng.Intn(3)
		args := make([]string, n)
		for i := range args {
			args[i] = names[rng.Intn(len(names))]
		}
		return atom(rel, args...)
	}
	for step := 0; step < 400; step++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			a := randAtom()
			if d.Add(a) {
				live = append(live, a)
			}
		} else {
			i := rng.Intn(len(live))
			a := live[i]
			if !d.Retract(a) {
				t.Fatalf("step %d: live fact %s not retractable", step, a)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%25 == 0 {
			checkConsistent(t, d)
		}
	}
	checkConsistent(t, d)
	// Drain to empty: everything must unwind cleanly.
	for _, a := range live {
		if !d.Retract(a) {
			t.Fatalf("drain: %s not retractable", a)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("drained database still has %d facts", d.Len())
	}
	checkConsistent(t, d)
}

// TestCloneEquivalence pins the id-space Clone contract: byte-identical
// String, identical stats and intern epoch, preserved ids, and full
// mutation isolation in both directions.
func TestCloneEquivalence(t *testing.T) {
	d := New()
	for i := 0; i < 50; i++ {
		d.Add(atom("E", fmt.Sprint(i), fmt.Sprint(i+1)))
		d.Add(atom("L", fmt.Sprint(i%7)))
	}
	d.Add(core.NewAtom("N", core.NewNull("n1"), core.Const("a,b")))
	d.Add(atom(core.ACDom, "pinned"))
	d.Retract(atom("E", "3", "4")) // clone a post-mutation state too

	c := d.Clone()
	if got, want := c.String(), d.String(); got != want {
		t.Fatalf("Clone().String() differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if c.Len() != d.Len() {
		t.Fatalf("Clone Len = %d, want %d", c.Len(), d.Len())
	}
	if c.InternEpoch() != d.InternEpoch() {
		t.Fatalf("Clone InternEpoch = %d, want %d", c.InternEpoch(), d.InternEpoch())
	}
	for _, rk := range d.Relations() {
		if c.RelSize(rk) != d.RelSize(rk) {
			t.Fatalf("%v: clone RelSize = %d, want %d", rk, c.RelSize(rk), d.RelSize(rk))
		}
		for p := 0; p < rk.Arity+rk.AnnArity; p++ {
			if c.DistinctAt(rk, p) != d.DistinctAt(rk, p) {
				t.Fatalf("%v pos %d: clone DistinctAt = %d, want %d", rk, p, c.DistinctAt(rk, p), d.DistinctAt(rk, p))
			}
		}
	}
	// Ids are preserved: every term resolves identically.
	for _, a := range d.All() {
		want, _ := d.FactIDs(nil, a)
		got, ok := c.FactIDs(nil, a)
		if !ok || !equalIDs(got, want) {
			t.Fatalf("clone ids of %s = %v, want %v", a, got, want)
		}
	}
	// Mutation isolation: divergent edits stay private.
	before := d.String()
	c.Add(atom("E", "100", "101"))
	c.Retract(atom("L", "0"))
	if d.String() != before {
		t.Fatal("mutating the clone changed the original")
	}
	cBefore := c.String()
	d.Retract(atom("E", "7", "8"))
	d.Add(atom("Z", "z"))
	if c.String() != cBefore {
		t.Fatal("mutating the original changed the clone")
	}
	checkConsistent(t, c)
	checkConsistent(t, d)

	// The explicit ACDom pin must survive the clone.
	c2 := d.Clone()
	c2.Add(atom("R", "pinned"))
	c2.Retract(atom("R", "pinned"))
	if !c2.Has(atom(core.ACDom, "pinned")) {
		t.Fatal("explicit ACDom pin lost by Clone")
	}
}

// cloneViaAdd is the pre-optimization Clone: every fact round-trips
// through the term-space Add path (re-hashing and re-interning every
// term). Kept as the benchmark baseline proving the id-space win.
func cloneViaAdd(d *Database) *Database {
	out := New()
	for _, a := range d.All() {
		if a.Relation == core.ACDom {
			continue
		}
		out.Add(a.Clone())
	}
	for _, a := range d.Facts(core.RelKey{Name: core.ACDom, Arity: 1}) {
		out.Add(a.Clone())
	}
	return out
}

func benchDB(n int) *Database {
	d := New()
	for i := 0; i < n; i++ {
		d.Add(atom("E", fmt.Sprint(i), fmt.Sprint((i*7+1)%n)))
		d.Add(atom("T", fmt.Sprint(i%97), fmt.Sprint(i), fmt.Sprint((i*3)%n)))
	}
	return d
}

func BenchmarkClone(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		d := benchDB(n)
		b.Run(fmt.Sprintf("idspace/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if c := d.Clone(); c.Len() != d.Len() {
					b.Fatal("bad clone")
				}
			}
		})
		b.Run(fmt.Sprintf("viaAdd/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if c := cloneViaAdd(d); c.Len() != d.Len() {
					b.Fatal("bad clone")
				}
			}
		})
	}
}
