// Package database implements an indexed store of ground atoms (over
// constants and labeled nulls), the "database" of Section 2 of the paper.
//
// The store maintains the built-in active constant domain relation ACDom:
// ACDom(c) holds exactly for the constants that occur in some non-ACDom
// fact. Labeled nulls never enter ACDom.
package database

import (
	"sort"
	"strings"

	"guardedrules/internal/core"
)

type posTerm struct {
	pos  int // argument position; annotation positions follow arguments
	term core.Term
}

// Database is a set of ground atoms with per-relation and per-position
// indexes supporting homomorphism search.
type Database struct {
	byRel map[core.RelKey][]core.Atom
	index map[core.RelKey]map[posTerm][]int
	seen  map[string]bool
	size  int
	acdom map[core.Term]bool
}

// New returns an empty database.
func New() *Database {
	return &Database{
		byRel: make(map[core.RelKey][]core.Atom),
		index: make(map[core.RelKey]map[posTerm][]int),
		seen:  make(map[string]bool),
		acdom: make(map[core.Term]bool),
	}
}

// FromAtoms returns a database containing the given ground atoms.
func FromAtoms(atoms []core.Atom) *Database {
	d := New()
	for _, a := range atoms {
		d.Add(a)
	}
	return d
}

// key serializes a ground atom for set membership.
func key(a core.Atom) string {
	var sb strings.Builder
	sb.WriteString(a.Relation)
	if len(a.Annotation) > 0 {
		sb.WriteByte('[')
		for i, t := range a.Annotation {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteByte(byte('0' + t.Kind))
			sb.WriteString(t.Name)
		}
		sb.WriteByte(']')
	}
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte(byte('0' + t.Kind))
		sb.WriteString(t.Name)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Add inserts a ground atom and reports whether it was new. Inserting an
// atom with variables panics: databases are ground by definition. ACDom
// facts for the constants of the atom are added automatically.
func (d *Database) Add(a core.Atom) bool {
	if !a.IsGround() {
		panic("database: atom " + a.String() + " is not ground")
	}
	if !d.insert(a) {
		return false
	}
	if a.Relation != core.ACDom {
		for _, t := range a.Args {
			d.noteConstant(t)
		}
		for _, t := range a.Annotation {
			d.noteConstant(t)
		}
	}
	return true
}

func (d *Database) noteConstant(t core.Term) {
	if !t.IsConst() || d.acdom[t] {
		return
	}
	d.acdom[t] = true
	d.insert(core.NewAtom(core.ACDom, t))
}

func (d *Database) insert(a core.Atom) bool {
	k := key(a)
	if d.seen[k] {
		return false
	}
	d.seen[k] = true
	rk := a.Key()
	idx := len(d.byRel[rk])
	d.byRel[rk] = append(d.byRel[rk], a)
	m := d.index[rk]
	if m == nil {
		m = make(map[posTerm][]int)
		d.index[rk] = m
	}
	for i, t := range a.Args {
		pt := posTerm{i, t}
		m[pt] = append(m[pt], idx)
	}
	for i, t := range a.Annotation {
		pt := posTerm{len(a.Args) + i, t}
		m[pt] = append(m[pt], idx)
	}
	d.size++
	return true
}

// Has reports whether the ground atom is in the database.
func (d *Database) Has(a core.Atom) bool { return d.seen[key(a)] }

// Len returns the number of facts, including maintained ACDom facts.
func (d *Database) Len() int { return d.size }

// Relations returns the relation keys with at least one fact, sorted.
func (d *Database) Relations() []core.RelKey {
	out := make([]core.RelKey, 0, len(d.byRel))
	for k := range d.byRel {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if out[i].Arity != out[j].Arity {
			return out[i].Arity < out[j].Arity
		}
		return out[i].AnnArity < out[j].AnnArity
	})
	return out
}

// Facts returns the facts of a relation in insertion order. The returned
// slice must not be modified.
func (d *Database) Facts(rk core.RelKey) []core.Atom { return d.byRel[rk] }

// FactsWith returns the facts of rk whose flat position pos (arguments
// first, then annotation positions) equals t. The returned slice of atoms
// is freshly allocated.
func (d *Database) FactsWith(rk core.RelKey, pos int, t core.Term) []core.Atom {
	m := d.index[rk]
	if m == nil {
		return nil
	}
	idxs := m[posTerm{pos, t}]
	out := make([]core.Atom, len(idxs))
	facts := d.byRel[rk]
	for i, ix := range idxs {
		out[i] = facts[ix]
	}
	return out
}

// CountWith returns how many facts of rk have term t at flat position pos.
func (d *Database) CountWith(rk core.RelKey, pos int, t core.Term) int {
	m := d.index[rk]
	if m == nil {
		return 0
	}
	return len(m[posTerm{pos, t}])
}

// All returns every fact, including ACDom, grouped by relation.
func (d *Database) All() []core.Atom {
	out := make([]core.Atom, 0, d.size)
	for _, rk := range d.Relations() {
		out = append(out, d.byRel[rk]...)
	}
	return out
}

// UserFacts returns every fact except the maintained ACDom facts.
func (d *Database) UserFacts() []core.Atom {
	var out []core.Atom
	for _, rk := range d.Relations() {
		if rk.Name == core.ACDom {
			continue
		}
		out = append(out, d.byRel[rk]...)
	}
	return out
}

// Constants returns the active constant domain: all constants occurring in
// non-ACDom facts.
func (d *Database) Constants() []core.Term {
	out := make([]core.Term, 0, len(d.acdom))
	for t := range d.acdom {
		out = append(out, t)
	}
	core.SortTerms(out)
	return out
}

// Terms returns all terms (constants and nulls) occurring in non-ACDom
// facts.
func (d *Database) Terms() core.TermSet {
	s := make(core.TermSet)
	for rk, facts := range d.byRel {
		if rk.Name == core.ACDom {
			continue
		}
		for _, a := range facts {
			for _, t := range a.Args {
				s.Add(t)
			}
			for _, t := range a.Annotation {
				s.Add(t)
			}
		}
	}
	return s
}

// Nulls returns the labeled nulls occurring in the database.
func (d *Database) Nulls() []core.Term {
	s := make(core.TermSet)
	for t := range d.Terms() {
		if t.IsNull() {
			s.Add(t)
		}
	}
	return s.Sorted()
}

// Clone returns a deep copy of the database.
func (d *Database) Clone() *Database {
	out := New()
	for _, a := range d.All() {
		if a.Relation == core.ACDom {
			continue // re-derived
		}
		out.Add(a.Clone())
	}
	// Preserve explicitly added ACDom facts (rare, but allowed).
	for _, a := range d.byRel[core.RelKey{Name: core.ACDom, Arity: 1}] {
		out.Add(a.Clone())
	}
	return out
}

// Restrict returns a new database with only the facts whose relation
// satisfies keep. ACDom is rebuilt from the kept facts.
func (d *Database) Restrict(keep func(core.RelKey) bool) *Database {
	out := New()
	for _, rk := range d.Relations() {
		if rk.Name == core.ACDom || !keep(rk) {
			continue
		}
		for _, a := range d.byRel[rk] {
			out.Add(a)
		}
	}
	return out
}

// GroundAtoms returns the facts of d whose terms are all constants,
// excluding ACDom. These are the "ground atomic consequences" compared by
// the paper's translations.
func (d *Database) GroundAtoms() []core.Atom {
	var out []core.Atom
	for _, a := range d.UserFacts() {
		allConst := true
		for _, t := range a.Args {
			if !t.IsConst() {
				allConst = false
				break
			}
		}
		if allConst {
			for _, t := range a.Annotation {
				if !t.IsConst() {
					allConst = false
					break
				}
			}
		}
		if allConst {
			out = append(out, a)
		}
	}
	return out
}

// String renders the database, one fact per line, sorted, excluding
// maintained ACDom facts.
func (d *Database) String() string {
	facts := d.UserFacts()
	lines := make([]string, len(facts))
	for i, a := range facts {
		lines[i] = a.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// SameGroundAtoms reports whether two databases contain exactly the same
// ground (all-constant) non-ACDom facts, and if not, returns an example
// fact present in one but not the other.
func SameGroundAtoms(a, b *Database) (bool, string) {
	for _, f := range a.GroundAtoms() {
		if !b.Has(f) {
			return false, "only in first: " + f.String()
		}
	}
	for _, f := range b.GroundAtoms() {
		if !a.Has(f) {
			return false, "only in second: " + f.String()
		}
	}
	return true, ""
}

// ForEachWith calls fn for every fact of rk whose flat position pos equals
// t, without allocating; fn returning false stops the iteration early.
func (d *Database) ForEachWith(rk core.RelKey, pos int, t core.Term, fn func(core.Atom) bool) {
	m := d.index[rk]
	if m == nil {
		return
	}
	facts := d.byRel[rk]
	for _, ix := range m[posTerm{pos, t}] {
		if !fn(facts[ix]) {
			return
		}
	}
}

// ForEachFact calls fn for every fact of rk; fn returning false stops.
func (d *Database) ForEachFact(rk core.RelKey, fn func(core.Atom) bool) {
	for _, a := range d.byRel[rk] {
		if !fn(a) {
			return
		}
	}
}
