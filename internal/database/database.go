// Package database implements an indexed store of ground atoms (over
// constants and labeled nulls), the "database" of Section 2 of the paper.
//
// Facts are deduplicated and indexed on interned term ids (see internTable):
// every term of every inserted atom is mapped to a dense uint32, and the
// per-relation seen-set and per-position indexes are keyed on packed id
// tuples. Because ids are bijective with terms and keys are scoped by
// relation key (name, annotation arity, arity), distinct atoms can never
// collide — unlike naive string serialization, where an unescaped
// separator inside a constant name conflates R("a,b") with R(a,b).
//
// # ACDom maintenance contract
//
// The store maintains the built-in active constant domain relation ACDom:
// ACDom(c) holds exactly for the constants that occur in some non-ACDom
// fact. Labeled nulls never enter ACDom. The contract has two sides:
//
//   - The Database derives ACDom facts: every Add of a non-ACDom fact
//     inserts ACDom(c) for each constant c of the fact (arguments and
//     annotation). Callers never need to — and, outside of tests, should
//     not — insert ACDom facts themselves. AddNotify reports the derived
//     ACDom facts to the caller, so fixpoint engines can propagate them
//     into their semi-naive deltas: a derived fact that introduces a fresh
//     constant silently extends ACDom, and an evaluator that does not
//     treat the new ACDom fact as delta will miss derivations of
//     ACDom-reading rules.
//   - Evaluators must schedule ACDom-reading rules no earlier than rules
//     that can introduce new head constants. datalog.Stratify implements
//     this with an implicit positive dependency edge from every head
//     relation to ACDom, so ACDom's stratum is at least the stratum of
//     every relation whose derivation can grow the active domain.
package database

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"guardedrules/internal/core"
)

// ErrNotGround is returned (wrapped with the offending atom) when a
// non-ground atom is inserted: databases are sets of ground atoms by
// definition (Section 2 of the paper). Match with errors.Is.
var ErrNotGround = errors.New("database: atom is not ground")

// Database is a set of ground atoms with per-relation and per-position
// indexes supporting homomorphism search.
type Database struct {
	intern *internTable
	byRel  map[core.RelKey]*relation
	size   int
	// acdom counts, per constant, its occurrences across all non-ACDom
	// facts (arguments and annotation, with multiplicity). A constant is
	// in the active domain exactly while its count is positive; the count
	// is what lets retraction drop ACDom(c) precisely when the last
	// supporting occurrence dies.
	acdom map[core.Term]int
	// acdomX marks constants whose ACDom fact was added explicitly by a
	// caller (rare, test-only): those facts survive even when no fact
	// supports them.
	acdomX map[core.Term]bool
}

// New returns an empty database.
func New() *Database {
	return &Database{
		intern: newInternTable(),
		byRel:  make(map[core.RelKey]*relation),
		acdom:  make(map[core.Term]int),
	}
}

// FromAtoms returns a database containing the given ground atoms.
func FromAtoms(atoms []core.Atom) *Database {
	d := New()
	for _, a := range atoms {
		d.Add(a)
	}
	return d
}

// Add inserts a ground atom and reports whether it was new. A non-ground
// atom is rejected (never inserted) and reports false; use AddErr to
// observe the typed ErrNotGround instead. ACDom facts for the constants
// of the atom are added automatically.
func (d *Database) Add(a core.Atom) bool {
	added, _ := d.AddNotify(a, nil)
	return added
}

// AddErr inserts a ground atom and reports whether it was new; a
// non-ground atom returns an error wrapping ErrNotGround instead of the
// pre-governance panic, so fixpoint engines degrade to a typed failure.
func (d *Database) AddErr(a core.Atom) (bool, error) { return d.AddNotify(a, nil) }

// AddNotify inserts a ground atom like AddErr and additionally calls
// notify for every fact actually inserted: the atom itself and any ACDom
// facts derived from its constants. Fixpoint engines use it to keep
// derived ACDom facts in their semi-naive deltas (see the package
// comment). Non-ground atoms are rejected with an error wrapping
// ErrNotGround.
func (d *Database) AddNotify(a core.Atom, notify func(core.Atom)) (bool, error) {
	if !a.IsGround() {
		return false, fmt.Errorf("%w: %s", ErrNotGround, a.String())
	}
	if !d.insert(a) {
		return false, nil
	}
	if notify != nil {
		notify(a)
	}
	if a.Relation != core.ACDom {
		for _, t := range a.Args {
			d.noteConstant(t, notify)
		}
		for _, t := range a.Annotation {
			d.noteConstant(t, notify)
		}
	} else if len(a.Args) == 1 && len(a.Annotation) == 0 && a.Args[0].IsConst() {
		// An explicitly added ACDom fact is pinned: it is not retracted
		// when its constant loses its last supporting occurrence.
		if d.acdomX == nil {
			d.acdomX = make(map[core.Term]bool)
		}
		d.acdomX[a.Args[0]] = true
	}
	return true, nil
}

func (d *Database) noteConstant(t core.Term, notify func(core.Atom)) {
	if !t.IsConst() {
		return
	}
	if n := d.acdom[t]; n > 0 {
		d.acdom[t] = n + 1
		return
	}
	d.acdom[t] = 1
	ac := core.NewAtom(core.ACDom, t)
	if d.insert(ac) && notify != nil {
		notify(ac)
	}
}

// internTuple appends the interned ids of the atom's terms (arguments
// first, then annotation) to dst, interning unseen terms.
func (d *Database) internTuple(dst []uint32, a core.Atom) []uint32 {
	for _, t := range a.Args {
		dst = append(dst, d.intern.Intern(t))
	}
	for _, t := range a.Annotation {
		dst = append(dst, d.intern.Intern(t))
	}
	return dst
}

// lookupTuple appends the ids of the atom's terms without interning; ok is
// false when some term has never been interned (the atom cannot be in d).
func (d *Database) lookupTuple(dst []uint32, a core.Atom) ([]uint32, bool) {
	for _, t := range a.Args {
		id, ok := d.intern.Lookup(t)
		if !ok {
			return dst, false
		}
		dst = append(dst, id)
	}
	for _, t := range a.Annotation {
		id, ok := d.intern.Lookup(t)
		if !ok {
			return dst, false
		}
		dst = append(dst, id)
	}
	return dst, true
}

func (d *Database) insert(a core.Atom) bool {
	rk := a.Key()
	r := d.byRel[rk]
	if r == nil {
		r = newRelation(rk)
		d.byRel[rk] = r
	}
	var buf [16]uint32
	key := d.internTuple(buf[:0], a)
	if r.seen.has(r, key) {
		return false
	}
	ix := len(r.facts)
	r.facts = append(r.facts, a)
	r.ids = append(r.ids, key...)
	r.seen.add(r, ix)
	for p, id := range key {
		m := r.index[p]
		if m == nil {
			m = make(map[uint32][]int32)
			r.index[p] = m
		}
		m[id] = append(m[id], int32(ix))
	}
	d.size++
	return true
}

// IDTuples returns the interned-id tuples of rk's facts as one flat
// slice, rk.Arity+rk.AnnArity ids per fact, in the same order as Facts.
// The returned slice must not be modified. Together with ForEachIndexWithID
// it lets fixpoint engines join entirely in id space.
func (d *Database) IDTuples(rk core.RelKey) []uint32 {
	if r := d.byRel[rk]; r != nil {
		return r.ids
	}
	return nil
}

// ForEachIndexWithID calls fn with the Facts index of every fact of rk
// whose flat position pos has the interned id; fn returning false stops
// the iteration early.
func (d *Database) ForEachIndexWithID(rk core.RelKey, pos int, id uint32, fn func(int) bool) {
	r := d.byRel[rk]
	if r == nil || pos < 0 || pos >= len(r.index) {
		return
	}
	for _, ix := range r.index[pos][id] {
		if !fn(int(ix)) {
			return
		}
	}
}

// IndexWithID returns the Facts ordinals of every fact of rk whose flat
// position pos has the interned id, in insertion order. The returned
// slice must not be modified.
func (d *Database) IndexWithID(rk core.RelKey, pos int, id uint32) []int32 {
	r := d.byRel[rk]
	if r == nil || pos < 0 || pos >= len(r.index) {
		return nil
	}
	return r.index[pos][id]
}

// Has reports whether the ground atom is in the database.
func (d *Database) Has(a core.Atom) bool {
	var buf [16]uint32
	key, ok := d.lookupTuple(buf[:0], a)
	if !ok {
		return false
	}
	r := d.byRel[a.Key()]
	return r != nil && r.seen.has(r, key)
}

// AppliedKey appends the packed interned-id key of a's instantiation
// under s — each term replaced by its binding, as in Subst.ApplyAtom — to
// dst. ok is false when some instantiated term has never been interned,
// in which case the instantiation cannot be in the database. Keys are
// scoped by a.Key(): comparing keys across relation keys is meaningless.
func (d *Database) AppliedKey(dst []byte, a core.Atom, s core.Subst) ([]byte, bool) {
	for _, t := range a.Args {
		if v, ok := s[t]; ok {
			t = v
		}
		id, ok := d.intern.Lookup(t)
		if !ok {
			return dst, false
		}
		dst = appendID(dst, id)
	}
	for _, t := range a.Annotation {
		if v, ok := s[t]; ok {
			t = v
		}
		id, ok := d.intern.Lookup(t)
		if !ok {
			return dst, false
		}
		dst = appendID(dst, id)
	}
	return dst, true
}

// SeenKey reports whether a fact with relation key rk and packed
// little-endian byte key (as produced by AppliedKey) is in the database.
// The id-slice variant SeenIDs avoids the byte packing and is preferred
// on hot paths.
func (d *Database) SeenKey(rk core.RelKey, key []byte) bool {
	var buf [16]uint32
	ids := buf[:0]
	for i := 0; i+4 <= len(key); i += 4 {
		ids = append(ids, uint32(key[i])|uint32(key[i+1])<<8|uint32(key[i+2])<<16|uint32(key[i+3])<<24)
	}
	return d.SeenIDs(rk, ids)
}

// SeenIDs reports whether a fact of rk with the given packed id tuple
// (arguments first, then annotation) is in the database.
func (d *Database) SeenIDs(rk core.RelKey, ids []uint32) bool {
	r := d.byRel[rk]
	return r != nil && len(ids) == r.w && r.seen.has(r, ids)
}

// HasApplied reports whether the instantiation of a under s is in the
// database, without materializing the instantiated atom. It is the
// allocation-free duplicate prefilter of the term-space engines, where
// most candidate derivations are re-derivations of facts already present.
func (d *Database) HasApplied(a core.Atom, s core.Subst) bool {
	var buf [16]uint32
	key := buf[:0]
	lookup := func(t core.Term) bool {
		if v, ok := s[t]; ok {
			t = v
		}
		id, ok := d.intern.Lookup(t)
		if !ok {
			return false
		}
		key = append(key, id)
		return true
	}
	for _, t := range a.Args {
		if !lookup(t) {
			return false
		}
	}
	for _, t := range a.Annotation {
		if !lookup(t) {
			return false
		}
	}
	r := d.byRel[a.Key()]
	return r != nil && r.seen.has(r, key)
}

// TermID returns the interned id of t; ok is false when t occurs in no
// fact of the database. Ids are only meaningful within this database.
func (d *Database) TermID(t core.Term) (uint32, bool) { return d.intern.Lookup(t) }

// InternTerm interns t into the database's term table without inserting
// any fact, returning its dense id. Engines that mint fresh terms (the
// chase's labeled nulls) use it to obtain the term's id before the first
// fact containing it is added, so id-keyed side tables can be indexed
// immediately.
func (d *Database) InternTerm(t core.Term) uint32 { return d.intern.Intern(t) }

// AddCost returns how many facts an Add of a would insert right now: 0
// when the atom is already present, otherwise 1 plus one for each
// distinct fresh constant of the atom that would newly enter ACDom (see
// the ACDom maintenance contract). Non-ground atoms — which Add rejects —
// cost 1. Engines with fact ceilings use it to enforce the ceiling
// per added fact, including the derived ACDom facts.
func (d *Database) AddCost(a core.Atom) int {
	if !a.IsGround() {
		return 1
	}
	if d.Has(a) {
		return 0
	}
	cost := 1
	if a.Relation == core.ACDom {
		return cost
	}
	var fresh []core.Term
	count := func(t core.Term) {
		if !t.IsConst() || d.acdom[t] > 0 {
			return
		}
		for _, u := range fresh {
			if u == t {
				return
			}
		}
		fresh = append(fresh, t)
		// An explicitly added ACDom fact keeps insert from re-adding it.
		if !d.Has(core.NewAtom(core.ACDom, t)) {
			cost++
		}
	}
	for _, t := range a.Args {
		count(t)
	}
	for _, t := range a.Annotation {
		count(t)
	}
	return cost
}

// Term returns the term with the given interned id.
func (d *Database) Term(id uint32) core.Term { return d.intern.TermOf(id) }

// Len returns the number of facts, including maintained ACDom facts.
func (d *Database) Len() int { return d.size }

// Relations returns the relation keys with at least one fact, sorted.
func (d *Database) Relations() []core.RelKey {
	out := make([]core.RelKey, 0, len(d.byRel))
	for k := range d.byRel {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if out[i].Arity != out[j].Arity {
			return out[i].Arity < out[j].Arity
		}
		return out[i].AnnArity < out[j].AnnArity
	})
	return out
}

// Facts returns the facts of a relation in insertion order. The returned
// slice must not be modified.
func (d *Database) Facts(rk core.RelKey) []core.Atom {
	if r := d.byRel[rk]; r != nil {
		return r.facts
	}
	return nil
}

// FactsWith returns the facts of rk whose flat position pos (arguments
// first, then annotation positions) equals t. The returned slice of atoms
// is freshly allocated.
func (d *Database) FactsWith(rk core.RelKey, pos int, t core.Term) []core.Atom {
	id, ok := d.intern.Lookup(t)
	if !ok {
		return nil
	}
	idxs := d.IndexWithID(rk, pos, id)
	if len(idxs) == 0 {
		return nil
	}
	out := make([]core.Atom, len(idxs))
	facts := d.byRel[rk].facts
	for i, ix := range idxs {
		out[i] = facts[ix]
	}
	return out
}

// CountWith returns how many facts of rk have term t at flat position pos.
func (d *Database) CountWith(rk core.RelKey, pos int, t core.Term) int {
	id, ok := d.intern.Lookup(t)
	if !ok {
		return 0
	}
	return d.CountWithID(rk, pos, id)
}

// CountWithID is CountWith for a term already resolved to its id.
func (d *Database) CountWithID(rk core.RelKey, pos int, id uint32) int {
	return len(d.IndexWithID(rk, pos, id))
}

// All returns every fact, including ACDom, grouped by relation.
func (d *Database) All() []core.Atom {
	out := make([]core.Atom, 0, d.size)
	for _, rk := range d.Relations() {
		out = append(out, d.byRel[rk].facts...)
	}
	return out
}

// UserFacts returns every fact except the maintained ACDom facts.
func (d *Database) UserFacts() []core.Atom {
	var out []core.Atom
	for _, rk := range d.Relations() {
		if rk.Name == core.ACDom {
			continue
		}
		out = append(out, d.byRel[rk].facts...)
	}
	return out
}

// Constants returns the active constant domain: all constants occurring in
// non-ACDom facts.
func (d *Database) Constants() []core.Term {
	out := make([]core.Term, 0, len(d.acdom))
	for t := range d.acdom {
		out = append(out, t)
	}
	core.SortTerms(out)
	return out
}

// Terms returns all terms (constants and nulls) occurring in non-ACDom
// facts.
func (d *Database) Terms() core.TermSet {
	s := make(core.TermSet)
	for rk, r := range d.byRel {
		if rk.Name == core.ACDom {
			continue
		}
		for _, a := range r.facts {
			for _, t := range a.Args {
				s.Add(t)
			}
			for _, t := range a.Annotation {
				s.Add(t)
			}
		}
	}
	return s
}

// Nulls returns the labeled nulls occurring in the database.
func (d *Database) Nulls() []core.Term {
	s := make(core.TermSet)
	for t := range d.Terms() {
		if t.IsNull() {
			s.Add(t)
		}
	}
	return s.Sorted()
}

// Clone returns a deep copy of the database as an id-space copy: the
// intern table, fact arrays, posting lists, seen-sets and ACDom counts
// are copied directly, with no term re-hashing or re-interning. Interned
// ids are preserved exactly — a term has the same id in the clone as in
// the original, and InternEpoch carries over unchanged — so engines that
// cache id resolutions against the original can keep them against the
// clone. Stored atoms are shared (they are immutable by the package's
// contract: the database never mutates a stored atom, and callers must
// not either). This is the snapshot hot path of versioned mutable
// databases: cost is proportional to the index footprint, not to
// re-inserting every fact.
func (d *Database) Clone() *Database {
	out := &Database{
		intern: d.intern.clone(),
		byRel:  make(map[core.RelKey]*relation, len(d.byRel)),
		size:   d.size,
		acdom:  make(map[core.Term]int, len(d.acdom)),
	}
	for rk, r := range d.byRel {
		out.byRel[rk] = r.clone()
	}
	for t, n := range d.acdom {
		out.acdom[t] = n
	}
	if len(d.acdomX) > 0 {
		out.acdomX = make(map[core.Term]bool, len(d.acdomX))
		for t := range d.acdomX {
			out.acdomX[t] = true
		}
	}
	return out
}

// Retract removes a ground atom and reports whether it was present; see
// DeleteNotify for the maintained-ACDom side effects.
func (d *Database) Retract(a core.Atom) bool {
	removed, _ := d.DeleteNotify(a, nil)
	return removed
}

// DeleteNotify removes a ground atom and reports whether it was present,
// calling notify for every fact actually removed: the atom itself and
// any derived ACDom facts whose last supporting occurrence died with it.
// It is the delete counterpart of AddNotify: fixpoint maintenance uses
// the notifications to propagate ACDom retractions into its deletion
// frontier. Retracting a derived ACDom fact directly is a no-op while
// any fact still supports the constant (the fact is derived, not owned
// by the caller); retracting an explicitly added ACDom fact unpins it.
// Non-ground atoms are rejected with an error wrapping ErrNotGround.
func (d *Database) DeleteNotify(a core.Atom, notify func(core.Atom)) (bool, error) {
	if !a.IsGround() {
		return false, fmt.Errorf("%w: %s", ErrNotGround, a.String())
	}
	rk := a.Key()
	r := d.byRel[rk]
	if r == nil {
		return false, nil
	}
	var buf [16]uint32
	key, ok := d.lookupTuple(buf[:0], a)
	if !ok {
		return false, nil
	}
	if a.Relation == core.ACDom && rk.Arity == 1 && rk.AnnArity == 0 {
		t := a.Args[0]
		delete(d.acdomX, t)
		if d.acdom[t] > 0 {
			return false, nil // still derived from a supporting fact
		}
	}
	if !r.remove(key) {
		return false, nil
	}
	d.size--
	if len(r.facts) == 0 {
		delete(d.byRel, rk)
	}
	if notify != nil {
		notify(a)
	}
	if a.Relation != core.ACDom {
		for _, t := range a.Args {
			d.dropConstant(t, notify)
		}
		for _, t := range a.Annotation {
			d.dropConstant(t, notify)
		}
	}
	return true, nil
}

// dropConstant decrements the occurrence count of a constant after a
// supporting fact was removed, retracting the derived ACDom fact when
// the count reaches zero (unless it was explicitly pinned).
func (d *Database) dropConstant(t core.Term, notify func(core.Atom)) {
	if !t.IsConst() {
		return
	}
	n := d.acdom[t]
	if n > 1 {
		d.acdom[t] = n - 1
		return
	}
	if n == 0 {
		return
	}
	delete(d.acdom, t)
	if d.acdomX[t] {
		return // explicitly added ACDom fact survives its supports
	}
	ac := core.NewAtom(core.ACDom, t)
	ark := ac.Key()
	r := d.byRel[ark]
	if r == nil {
		return
	}
	var buf [4]uint32
	key, ok := d.lookupTuple(buf[:0], ac)
	if !ok || !r.remove(key) {
		return
	}
	d.size--
	if len(r.facts) == 0 {
		delete(d.byRel, ark)
	}
	if notify != nil {
		notify(ac)
	}
}

// FactIDs appends the interned-id tuple of the ground atom a (arguments
// first, then annotation) to dst; ok is false when some term of a has
// never been interned, in which case a is not and never was in d.
// Incremental maintenance uses it to carry deleted facts as id tuples:
// retraction never un-interns terms, so a retracted fact still resolves.
func (d *Database) FactIDs(dst []uint32, a core.Atom) ([]uint32, bool) {
	return d.lookupTuple(dst, a)
}

// ACDomSupport returns the number of occurrences of t across all
// non-ACDom facts (arguments and annotation, with multiplicity) — the
// refcount behind the maintained ACDom(t) fact. Zero means t is not in
// the active domain.
func (d *Database) ACDomSupport(t core.Term) int { return d.acdom[t] }

// ACDomPinned reports whether ACDom(t) was added explicitly by a caller,
// in which case the fact survives even with no supporting occurrence and
// must never be retracted by maintenance.
func (d *Database) ACDomPinned(t core.Term) bool { return d.acdomX[t] }

// TermOccursIn reports whether t occurs at any position of any fact of
// rk, via the per-position posting lists (no fact scan).
func (d *Database) TermOccursIn(rk core.RelKey, t core.Term) bool {
	id, ok := d.intern.Lookup(t)
	if !ok {
		return false
	}
	r := d.byRel[rk]
	if r == nil {
		return false
	}
	for p := 0; p < r.w; p++ {
		if len(r.index[p][id]) > 0 {
			return true
		}
	}
	return false
}

// FactsContaining returns every non-ACDom fact with t at some position
// (argument or annotation), in deterministic order: relations sorted as
// in Relations, fact ordinals ascending, each fact once. Incremental
// maintenance uses it to over-delete the remaining supports of a
// constant whose active-domain membership is no longer grounded.
func (d *Database) FactsContaining(t core.Term) []core.Atom {
	id, ok := d.intern.Lookup(t)
	if !ok {
		return nil
	}
	var out []core.Atom
	for _, rk := range d.Relations() {
		if rk.Name == core.ACDom {
			continue
		}
		r := d.byRel[rk]
		var ords []int32
		for p := 0; p < r.w; p++ {
			ords = append(ords, r.index[p][id]...)
		}
		if len(ords) == 0 {
			continue
		}
		sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
		prev := int32(-1)
		for _, ix := range ords {
			if ix == prev {
				continue // t at several positions of one fact
			}
			prev = ix
			out = append(out, r.facts[ix])
		}
	}
	return out
}

// Restrict returns a new database with only the facts whose relation
// satisfies keep. ACDom is rebuilt from the kept facts.
func (d *Database) Restrict(keep func(core.RelKey) bool) *Database {
	out := New()
	for _, rk := range d.Relations() {
		if rk.Name == core.ACDom || !keep(rk) {
			continue
		}
		for _, a := range d.byRel[rk].facts {
			out.Add(a)
		}
	}
	return out
}

// GroundAtoms returns the facts of d whose terms are all constants,
// excluding ACDom. These are the "ground atomic consequences" compared by
// the paper's translations.
func (d *Database) GroundAtoms() []core.Atom {
	var out []core.Atom
	for _, a := range d.UserFacts() {
		allConst := true
		for _, t := range a.Args {
			if !t.IsConst() {
				allConst = false
				break
			}
		}
		if allConst {
			for _, t := range a.Annotation {
				if !t.IsConst() {
					allConst = false
					break
				}
			}
		}
		if allConst {
			out = append(out, a)
		}
	}
	return out
}

// String renders the database, one fact per line, sorted, excluding
// maintained ACDom facts.
func (d *Database) String() string {
	facts := d.UserFacts()
	lines := make([]string, len(facts))
	for i, a := range facts {
		lines[i] = a.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// SameGroundAtoms reports whether two databases contain exactly the same
// ground (all-constant) non-ACDom facts, and if not, returns an example
// fact present in one but not the other.
func SameGroundAtoms(a, b *Database) (bool, string) {
	for _, f := range a.GroundAtoms() {
		if !b.Has(f) {
			return false, "only in first: " + f.String()
		}
	}
	for _, f := range b.GroundAtoms() {
		if !a.Has(f) {
			return false, "only in second: " + f.String()
		}
	}
	return true, ""
}

// ForEachWith calls fn for every fact of rk whose flat position pos equals
// t, without allocating; fn returning false stops the iteration early.
func (d *Database) ForEachWith(rk core.RelKey, pos int, t core.Term, fn func(core.Atom) bool) {
	id, ok := d.intern.Lookup(t)
	if !ok {
		return
	}
	d.ForEachWithID(rk, pos, id, fn)
}

// ForEachWithID is ForEachWith for a term already resolved to its id.
func (d *Database) ForEachWithID(rk core.RelKey, pos int, id uint32, fn func(core.Atom) bool) {
	idxs := d.IndexWithID(rk, pos, id)
	if len(idxs) == 0 {
		return
	}
	facts := d.byRel[rk].facts
	for _, ix := range idxs {
		if !fn(facts[ix]) {
			return
		}
	}
}

// ForEachFact calls fn for every fact of rk; fn returning false stops.
func (d *Database) ForEachFact(rk core.RelKey, fn func(core.Atom) bool) {
	for _, a := range d.Facts(rk) {
		if !fn(a) {
			return
		}
	}
}
