package database

import "guardedrules/internal/core"

// relation is the per-relation-key store: the facts in insertion order,
// their packed id tuples (w ids per fact, flat), per-position indexes
// keyed on interned ids, and an open-addressing seen-set over the id
// tuples. Keeping everything keyed on dense uint32 ids (instead of
// serialized byte strings) removes string hashing from the insert and
// dedup hot paths, which profiles showed dominating fixpoint runs.
type relation struct {
	w     int
	facts []core.Atom
	ids   []uint32
	// index[pos][id] lists the fact ordinals (into facts/ids) whose flat
	// position pos holds id, in insertion order. len(index[pos]) is the
	// number of distinct ids at that position — the planner's DistinctAt.
	index []map[uint32][]int32
	seen  idSet
}

func newRelation(rk core.RelKey) *relation {
	w := rk.Arity + rk.AnnArity
	return &relation{w: w, index: make([]map[uint32][]int32, w)}
}

// tupleAt returns the packed id tuple of fact ordinal ix.
func (r *relation) tupleAt(ix int) []uint32 { return r.ids[ix*r.w : ix*r.w+r.w] }

// idSet is an open-addressing hash set of fact ordinals keyed by their id
// tuples (stored once, in the relation's flat ids array — the set holds
// only 1-based ordinals). Zero value is ready to use.
type idSet struct {
	table []int32 // 1-based fact ordinal; 0 = empty slot
	n     int
}

// fnv64 constants, hashing word-at-a-time over the id tuple.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashIDs(ids []uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, id := range ids {
		h ^= uint64(id)
		h *= fnvPrime64
	}
	return h
}

func equalIDs(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// has reports whether the tuple key is already stored in r.
func (s *idSet) has(r *relation, key []uint32) bool {
	if len(s.table) == 0 {
		return false
	}
	mask := uint64(len(s.table) - 1)
	for i := hashIDs(key) & mask; ; i = (i + 1) & mask {
		e := s.table[i]
		if e == 0 {
			return false
		}
		if equalIDs(r.tupleAt(int(e-1)), key) {
			return true
		}
	}
}

// add records fact ordinal ix (whose tuple must already be appended to
// r.ids). The caller checks has first; add never checks for duplicates.
func (s *idSet) add(r *relation, ix int) {
	if 4*(s.n+1) >= 3*len(s.table) {
		s.grow(r)
	}
	mask := uint64(len(s.table) - 1)
	i := hashIDs(r.tupleAt(ix)) & mask
	for s.table[i] != 0 {
		i = (i + 1) & mask
	}
	s.table[i] = int32(ix + 1)
	s.n++
}

func (s *idSet) grow(r *relation) {
	ncap := 2 * len(s.table)
	if ncap < 16 {
		ncap = 16
	}
	nt := make([]int32, ncap)
	mask := uint64(ncap - 1)
	for _, e := range s.table {
		if e == 0 {
			continue
		}
		i := hashIDs(r.tupleAt(int(e-1))) & mask
		for nt[i] != 0 {
			i = (i + 1) & mask
		}
		nt[i] = e
	}
	s.table = nt
}
