package database

import "guardedrules/internal/core"

// relation is the per-relation-key store: the facts in insertion order,
// their packed id tuples (w ids per fact, flat), per-position indexes
// keyed on interned ids, and an open-addressing seen-set over the id
// tuples. Keeping everything keyed on dense uint32 ids (instead of
// serialized byte strings) removes string hashing from the insert and
// dedup hot paths, which profiles showed dominating fixpoint runs.
type relation struct {
	w     int
	facts []core.Atom
	ids   []uint32
	// index[pos][id] lists the fact ordinals (into facts/ids) whose flat
	// position pos holds id, in insertion order. len(index[pos]) is the
	// number of distinct ids at that position — the planner's DistinctAt.
	index []map[uint32][]int32
	seen  idSet
}

func newRelation(rk core.RelKey) *relation {
	w := rk.Arity + rk.AnnArity
	return &relation{w: w, index: make([]map[uint32][]int32, w)}
}

// tupleAt returns the packed id tuple of fact ordinal ix.
func (r *relation) tupleAt(ix int) []uint32 { return r.ids[ix*r.w : ix*r.w+r.w] }

// clone returns a deep copy of the relation. Atom values are shared
// (stored atoms are immutable); the id arrays, posting lists and
// seen-set table are copied, so the clone mutates independently.
func (r *relation) clone() *relation {
	out := &relation{
		w:     r.w,
		facts: append([]core.Atom(nil), r.facts...),
		ids:   append([]uint32(nil), r.ids...),
		index: make([]map[uint32][]int32, len(r.index)),
		seen:  idSet{table: append([]int32(nil), r.seen.table...), n: r.seen.n},
	}
	for p, m := range r.index {
		if m == nil {
			continue
		}
		nm := make(map[uint32][]int32, len(m))
		for id, list := range m {
			nm[id] = append([]int32(nil), list...)
		}
		out.index[p] = nm
	}
	return out
}

// remove deletes the fact with the given id tuple, reporting whether it
// was present. The relation's last fact is swapped into the freed
// ordinal (facts/ids are kept dense), and the seen-set and per-position
// posting lists are maintained: the removed ordinal leaves every list it
// was on (empty lists are deleted, keeping DistinctAt exact), and the
// moved fact's ordinal is rewritten in place, preserving each list's
// ascending order.
func (r *relation) remove(key []uint32) bool {
	ix := r.seen.del(r, key)
	if ix < 0 {
		return false
	}
	last := len(r.facts) - 1
	if ix != last {
		// Re-point the seen-set entry of the fact about to move. The
		// probe runs before ids are mutated, so every stored ordinal
		// still resolves to its original tuple.
		r.seen.repoint(r, r.tupleAt(last), last, ix)
	}
	var lastKey [16]uint32
	lk := append(lastKey[:0], r.tupleAt(last)...)
	for p := 0; p < r.w; p++ {
		removeOrdinal(r.index[p], key[p], int32(ix))
		if ix != last {
			moveOrdinal(r.index[p], lk[p], int32(last), int32(ix))
		}
	}
	if ix != last {
		r.facts[ix] = r.facts[last]
		copy(r.ids[ix*r.w:(ix+1)*r.w], r.ids[last*r.w:])
	}
	r.facts[last] = core.Atom{}
	r.facts = r.facts[:last]
	r.ids = r.ids[:last*r.w]
	return true
}

// removeOrdinal deletes ord from the ascending posting list m[id],
// dropping the map key when the list empties (len(m) is the planner's
// DistinctAt, so empty lists must not linger).
func removeOrdinal(m map[uint32][]int32, id uint32, ord int32) {
	list := m[id]
	i := searchOrdinal(list, ord)
	if i >= len(list) || list[i] != ord {
		return
	}
	if len(list) == 1 {
		delete(m, id)
		return
	}
	copy(list[i:], list[i+1:])
	m[id] = list[:len(list)-1]
}

// moveOrdinal rewrites ordinal from as to in the ascending posting list
// m[id]. from is the relation's maximal ordinal (the fact being swapped
// down), so it sits at the end of the list; the rewritten value is
// re-inserted at its sorted position.
func moveOrdinal(m map[uint32][]int32, id uint32, from, to int32) {
	list := m[id]
	if len(list) == 0 || list[len(list)-1] != from {
		return
	}
	i := searchOrdinal(list, to)
	copy(list[i+1:], list[i:len(list)-1])
	list[i] = to
}

// searchOrdinal returns the insertion point of ord in the ascending
// list.
func searchOrdinal(list []int32, ord int32) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < ord {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// idSet is an open-addressing hash set of fact ordinals keyed by their id
// tuples (stored once, in the relation's flat ids array — the set holds
// only 1-based ordinals). Zero value is ready to use.
type idSet struct {
	table []int32 // 1-based fact ordinal; 0 = empty slot
	n     int
}

// fnv64 constants, hashing word-at-a-time over the id tuple.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashIDs(ids []uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, id := range ids {
		h ^= uint64(id)
		h *= fnvPrime64
	}
	return h
}

func equalIDs(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// has reports whether the tuple key is already stored in r.
func (s *idSet) has(r *relation, key []uint32) bool {
	if len(s.table) == 0 {
		return false
	}
	mask := uint64(len(s.table) - 1)
	for i := hashIDs(key) & mask; ; i = (i + 1) & mask {
		e := s.table[i]
		if e == 0 {
			return false
		}
		if equalIDs(r.tupleAt(int(e-1)), key) {
			return true
		}
	}
}

// add records fact ordinal ix (whose tuple must already be appended to
// r.ids). The caller checks has first; add never checks for duplicates.
func (s *idSet) add(r *relation, ix int) {
	if 4*(s.n+1) >= 3*len(s.table) {
		s.grow(r)
	}
	mask := uint64(len(s.table) - 1)
	i := hashIDs(r.tupleAt(ix)) & mask
	for s.table[i] != 0 {
		i = (i + 1) & mask
	}
	s.table[i] = int32(ix + 1)
	s.n++
}

// del removes the entry with the given tuple key, returning its 0-based
// fact ordinal, or -1 when absent. Deletion is by backshift: the probe
// cluster after the hole is compacted so that lookups never need
// tombstones and the load factor stays exact.
func (s *idSet) del(r *relation, key []uint32) int {
	if len(s.table) == 0 {
		return -1
	}
	mask := uint64(len(s.table) - 1)
	i := hashIDs(key) & mask
	for {
		e := s.table[i]
		if e == 0 {
			return -1
		}
		if equalIDs(r.tupleAt(int(e-1)), key) {
			break
		}
		i = (i + 1) & mask
	}
	ord := int(s.table[i] - 1)
	// Walk the cluster after the hole; an entry moves back into the hole
	// exactly when its home slot is cyclically outside (i, j], i.e. its
	// probe path crosses the hole.
	j := i
	for {
		j = (j + 1) & mask
		e := s.table[j]
		if e == 0 {
			break
		}
		h := hashIDs(r.tupleAt(int(e-1))) & mask
		if (j > i && (h <= i || h > j)) || (j < i && h <= i && h > j) {
			s.table[i] = e
			i = j
		}
	}
	s.table[i] = 0
	s.n--
	return ord
}

// repoint rewrites the stored ordinal of the fact with tuple key from
// `from` to `to` (the fact is being swapped to a new ordinal). The probe
// must run while the relation's id array still holds every stored
// ordinal's original tuple.
func (s *idSet) repoint(r *relation, key []uint32, from, to int) {
	mask := uint64(len(s.table) - 1)
	for i := hashIDs(key) & mask; ; i = (i + 1) & mask {
		e := s.table[i]
		if e == 0 {
			return
		}
		if int(e-1) == from {
			s.table[i] = int32(to + 1)
			return
		}
	}
}

func (s *idSet) grow(r *relation) {
	ncap := 2 * len(s.table)
	if ncap < 16 {
		ncap = 16
	}
	nt := make([]int32, ncap)
	mask := uint64(ncap - 1)
	for _, e := range s.table {
		if e == 0 {
			continue
		}
		i := hashIDs(r.tupleAt(int(e-1))) & mask
		for nt[i] != 0 {
			i = (i + 1) & mask
		}
		nt[i] = e
	}
	s.table = nt
}
