package database

import "guardedrules/internal/core"

// internTable maps terms to dense uint32 ids and back. Each Database owns one:
// facts are deduplicated and indexed on interned id tuples instead of
// serialized strings, which is both faster (integer hashing, no
// serialization on the hot path) and collision-free by construction — ids
// are bijective with terms, and tuple keys are scoped per relation key, so
// arity and the args/annotation boundary can never be confused.
//
// An internTable is not safe for concurrent mutation; Lookup and TermOf are
// read-only and may be called concurrently with each other (but not with
// Intern). The Database write path is single-writer, which upholds this.
type internTable struct {
	ids   map[core.Term]uint32
	terms []core.Term
}

// newInternTable returns an empty interner.
func newInternTable() *internTable {
	return &internTable{ids: make(map[core.Term]uint32)}
}

// Intern returns the id of t, assigning the next dense id if t is new.
func (in *internTable) Intern(t core.Term) uint32 {
	if id, ok := in.ids[t]; ok {
		return id
	}
	id := uint32(len(in.terms))
	in.ids[t] = id
	in.terms = append(in.terms, t)
	return id
}

// clone returns a deep copy of the interner with identical id
// assignments, so terms resolve to the same ids in the copy.
func (in *internTable) clone() *internTable {
	ids := make(map[core.Term]uint32, len(in.ids))
	for t, id := range in.ids {
		ids[t] = id
	}
	return &internTable{ids: ids, terms: append([]core.Term(nil), in.terms...)}
}

// Lookup returns the id of t without interning; ok is false when t has
// never been interned.
func (in *internTable) Lookup(t core.Term) (uint32, bool) {
	id, ok := in.ids[t]
	return id, ok
}

// TermOf returns the term with the given id; it panics on ids never
// returned by Intern.
func (in *internTable) TermOf(id uint32) core.Term { return in.terms[id] }

// Len returns the number of interned terms.
func (in *internTable) Len() int { return len(in.terms) }

// appendID appends the little-endian bytes of id to dst. Packed id tuples
// are the per-relation dedup keys: fixed four bytes per term, so distinct
// id tuples always pack to distinct byte strings.
func appendID(dst []byte, id uint32) []byte {
	return append(dst, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
}
