package database

import "guardedrules/internal/core"

// Statistics surface: the cardinality counters the cost-based join
// planner (internal/hom.PlanBody) reads. All of them are maintained
// incrementally by insert — reading them is O(1) — and they describe the
// database exactly, not an estimate: RelSize is the fact count of a
// relation, DistinctAt the number of distinct interned ids occurring at
// one flat position, CountWithID (database.go) the exact length of one
// index posting list.

// RelSize returns the number of facts of rk (0 for an absent relation).
func (d *Database) RelSize(rk core.RelKey) int {
	if r := d.byRel[rk]; r != nil {
		return len(r.facts)
	}
	return 0
}

// DistinctAt returns the number of distinct interned ids occurring at
// flat position pos (arguments first, then annotation) of rk's facts.
// RelSize/DistinctAt is the planner's average posting-list length for a
// position bound to a yet-unknown id.
func (d *Database) DistinctAt(rk core.RelKey, pos int) int {
	r := d.byRel[rk]
	if r == nil || pos < 0 || pos >= len(r.index) {
		return 0
	}
	return len(r.index[pos])
}

// InternEpoch returns a counter that changes exactly when a new term is
// interned (by an Add or InternTerm). Engines that resolve compiled
// constants against the database once per round use it to skip the
// re-resolution entirely when no new term appeared: every TermID answer
// is unchanged while the epoch is unchanged. The counter only grows.
func (d *Database) InternEpoch() int { return d.intern.Len() }

// Ensure Database satisfies the planner's statistics interface without
// importing hom (which imports database).
var _ interface {
	RelSize(core.RelKey) int
	DistinctAt(core.RelKey, int) int
	CountWithID(core.RelKey, int, uint32) int
} = (*Database)(nil)
