package database

import (
	"testing"

	"guardedrules/internal/core"
)

// AddCost must predict exactly how much Len grows on Add, including the
// derived ACDom facts — fact-ceiling enforcement depends on it.
func TestAddCostPredictsLenGrowth(t *testing.T) {
	d := New()
	check := func(a core.Atom) {
		t.Helper()
		cost := d.AddCost(a)
		before := d.Len()
		d.Add(a)
		if got := d.Len() - before; got != cost {
			t.Fatalf("AddCost(%v) = %d, but Len grew by %d", a, cost, got)
		}
	}
	// Fresh binary fact over two fresh constants: fact + 2 ACDom.
	check(core.NewAtom("R", core.Const("a"), core.Const("b")))
	// Same atom again: cost 0.
	if c := d.AddCost(core.NewAtom("R", core.Const("a"), core.Const("b"))); c != 0 {
		t.Fatalf("present atom cost = %d, want 0", c)
	}
	// One fresh, one known constant: fact + 1 ACDom.
	check(core.NewAtom("R", core.Const("a"), core.Const("c")))
	// Repeated fresh constant within the atom counts once.
	check(core.NewAtom("S", core.Const("d"), core.Const("d")))
	// Annotation constants count too.
	check(core.Atom{Relation: "T", Args: []core.Term{core.Const("a")},
		Annotation: []core.Term{core.Const("e")}})
	// Nulls never enter ACDom.
	check(core.NewAtom("R", core.Const("a"), core.NewNull("n1")))
	// ACDom facts themselves derive nothing.
	check(core.NewAtom(core.ACDom, core.Const("zz")))
	// ... and a constant whose ACDom fact was explicitly added is not
	// double-counted when it later appears in a user fact.
	check(core.NewAtom("R", core.Const("zz"), core.Const("a")))
}

func TestAddCostNonGround(t *testing.T) {
	d := New()
	if c := d.AddCost(core.NewAtom("R", core.Var("X"))); c != 1 {
		t.Fatalf("non-ground cost = %d, want 1", c)
	}
}

func TestInternTermMintsStableIDs(t *testing.T) {
	d := New()
	n := core.NewNull("n1")
	id := d.InternTerm(n)
	if got, ok := d.TermID(n); !ok || got != id {
		t.Fatalf("TermID after InternTerm = (%d,%v), want (%d,true)", got, ok, id)
	}
	if d.Term(id) != n {
		t.Fatalf("Term(%d) = %v, want %v", id, d.Term(id), n)
	}
	// Interning must not add facts.
	if d.Len() != 0 {
		t.Fatalf("InternTerm added facts: Len=%d", d.Len())
	}
	// A later fact containing the term reuses the id.
	d.Add(core.NewAtom("R", core.Const("a"), n))
	if got, _ := d.TermID(n); got != id {
		t.Fatalf("id changed after Add: %d vs %d", got, id)
	}
}
