package gen

import (
	"testing"

	"guardedrules/internal/classify"
	"guardedrules/internal/core"
)

func TestCitationGraphShape(t *testing.T) {
	d := CitationGraph(4)
	if len(d.Facts(core.RelKey{Name: "Publication", Arity: 1})) != 4 {
		t.Error("publication count")
	}
	if len(d.Facts(core.RelKey{Name: "citedIn", Arity: 2})) != 3 {
		t.Error("citation chain length")
	}
	if !d.Has(core.NewAtom("Scientific", core.Const("t0"))) {
		t.Error("seed topic missing")
	}
}

func TestPathAndGrid(t *testing.T) {
	p := Path(5)
	if len(p.Facts(core.RelKey{Name: "E", Arity: 2})) != 4 {
		t.Error("path edges")
	}
	g := Grid(3)
	if len(g.Facts(core.RelKey{Name: "E", Arity: 2})) != 12 {
		t.Errorf("grid edges: %d", len(g.Facts(core.RelKey{Name: "E", Arity: 2})))
	}
}

func TestRandomTheoriesAreInTheirFragment(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		fg := RandomFrontierGuardedTheory(FGTheoryOptions{Rules: 6, Seed: seed})
		if !classify.Classify(fg).Member[classify.FrontierGuarded] {
			t.Errorf("seed %d: theory not frontier-guarded:\n%v", seed, fg)
		}
		g := RandomGuardedTheory(6, seed)
		if !classify.Classify(g).Member[classify.Guarded] {
			t.Errorf("seed %d: theory not guarded:\n%v", seed, g)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandomGraph(5, 8, 42)
	b := RandomGraph(5, 8, 42)
	if a.String() != b.String() {
		t.Error("RandomGraph must be deterministic per seed")
	}
	th1 := RandomFrontierGuardedTheory(FGTheoryOptions{Rules: 5, Seed: 7})
	th2 := RandomFrontierGuardedTheory(FGTheoryOptions{Rules: 5, Seed: 7})
	if th1.String() != th2.String() {
		t.Error("RandomFrontierGuardedTheory must be deterministic per seed")
	}
}

func TestRandomUnaryActiveDomain(t *testing.T) {
	d := RandomUnary(6, 0.5, 3)
	if len(d.Constants()) != 6 {
		t.Errorf("all constants must be active: %d", len(d.Constants()))
	}
}
