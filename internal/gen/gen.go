// Package gen provides deterministic workload generators for the
// experiment harness: scalable databases (citation graphs, paths, grids)
// and random theories per guardedness fragment.
package gen

import (
	"fmt"
	"math/rand"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// CitationGraph builds a publication database in the shape of Example 1:
// n publications in a citation chain, each with two authors shared with
// its neighbour, and a seed scientific topic on the first publication.
func CitationGraph(n int) *database.Database {
	d := database.New()
	pub := func(i int) core.Term { return core.Const(fmt.Sprintf("p%d", i)) }
	author := func(i int) core.Term { return core.Const(fmt.Sprintf("a%d", i)) }
	for i := 0; i < n; i++ {
		d.Add(core.NewAtom("Publication", pub(i)))
		d.Add(core.NewAtom("hasAuthor", pub(i), author(i)))
		d.Add(core.NewAtom("hasAuthor", pub(i), author(i+1)))
		if i > 0 {
			d.Add(core.NewAtom("citedIn", pub(i-1), pub(i)))
		}
	}
	d.Add(core.NewAtom("hasTopic", pub(0), core.Const("t0")))
	d.Add(core.NewAtom("Scientific", core.Const("t0")))
	return d
}

// Path builds a directed path a0 → a1 → ... → a(n-1) in relation E.
func Path(n int) *database.Database {
	d := database.New()
	node := func(i int) core.Term { return core.Const(fmt.Sprintf("v%d", i)) }
	for i := 0; i < n; i++ {
		d.Add(core.NewAtom("Node", node(i)))
		if i > 0 {
			d.Add(core.NewAtom("E", node(i-1), node(i)))
		}
	}
	return d
}

// ChainForest builds disjoint E-chains: `chains` paths of `chainLen`
// nodes each, chains*(chainLen-1) edges in total. Its transitive closure
// has chains*chainLen*(chainLen-1)/2 pairs — linear in the edge count for
// fixed chain length — which makes it a scalable closure benchmark whose
// output does not explode quadratically with the input.
func ChainForest(chains, chainLen int) *database.Database {
	d := database.New()
	for c := 0; c < chains; c++ {
		for i := 1; i < chainLen; i++ {
			d.Add(core.NewAtom("E",
				core.Const(fmt.Sprintf("c%dn%d", c, i-1)),
				core.Const(fmt.Sprintf("c%dn%d", c, i))))
		}
	}
	return d
}

// Grid builds an n×n grid with E edges right and down.
func Grid(n int) *database.Database {
	d := database.New()
	node := func(i, j int) core.Term { return core.Const(fmt.Sprintf("g%d_%d", i, j)) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.Add(core.NewAtom("Node", node(i, j)))
			if i+1 < n {
				d.Add(core.NewAtom("E", node(i, j), node(i+1, j)))
			}
			if j+1 < n {
				d.Add(core.NewAtom("E", node(i, j), node(i, j+1)))
			}
		}
	}
	return d
}

// RandomGraph builds a random digraph over n nodes with m edges.
func RandomGraph(n, m int, seed int64) *database.Database {
	rng := rand.New(rand.NewSource(seed))
	d := database.New()
	node := func(i int) core.Term { return core.Const(fmt.Sprintf("v%d", i)) }
	for i := 0; i < n; i++ {
		d.Add(core.NewAtom("Node", node(i)))
	}
	for e := 0; e < m; e++ {
		d.Add(core.NewAtom("E", node(rng.Intn(n)), node(rng.Intn(n))))
	}
	return d
}

// RandomUnary builds a database of n constants, each in relation R with
// probability pInR; the rest carry relation S (so all constants are
// active).
func RandomUnary(n int, pInR float64, seed int64) *database.Database {
	rng := rand.New(rand.NewSource(seed))
	d := database.New()
	for i := 0; i < n; i++ {
		c := core.Const(fmt.Sprintf("c%d", i))
		if rng.Float64() < pInR {
			d.Add(core.NewAtom("R", c))
		} else {
			d.Add(core.NewAtom("S", c))
		}
	}
	return d
}

// FGTheoryOptions sizes RandomFrontierGuardedTheory.
type FGTheoryOptions struct {
	Rules int
	Seed  int64
}

// RandomFrontierGuardedTheory builds a random frontier-guarded theory over
// unary relations A, B, C and binary relations R, S: guarded existential
// rules plus non-guarded but frontier-guarded join rules.
func RandomFrontierGuardedTheory(opts FGTheoryOptions) *core.Theory {
	rng := rand.New(rand.NewSource(opts.Seed))
	unary := []string{"A", "B", "C"}
	binary := []string{"R", "S"}
	x, y, z := core.Var("X"), core.Var("Y"), core.Var("Z")
	th := core.NewTheory()
	n := opts.Rules
	if n == 0 {
		n = 5
	}
	for i := 0; i < n; i++ {
		var r *core.Rule
		switch rng.Intn(4) {
		case 0: // guarded existential: A(x) → ∃y R(x,y)
			r = core.NewRule(
				[]core.Atom{core.NewAtom(unary[rng.Intn(3)], x)},
				[]core.Term{y},
				core.NewAtom(binary[rng.Intn(2)], x, y))
		case 1: // guarded projection: R(x,y) → B(y)
			r = core.NewRule(
				[]core.Atom{core.NewAtom(binary[rng.Intn(2)], x, y)},
				nil,
				core.NewAtom(unary[rng.Intn(3)], y))
		case 2: // frontier-guarded join: R(x,y), S(y,z) → C(y)
			r = core.NewRule(
				[]core.Atom{
					core.NewAtom(binary[rng.Intn(2)], x, y),
					core.NewAtom(binary[rng.Intn(2)], y, z),
				},
				nil,
				core.NewAtom(unary[rng.Intn(3)], y))
		case 3: // frontier-guarded triangle: R(x,y), S(y,z), R(z,x) → A(x)
			r = core.NewRule(
				[]core.Atom{
					core.NewAtom(binary[rng.Intn(2)], x, y),
					core.NewAtom(binary[rng.Intn(2)], y, z),
					core.NewAtom(binary[rng.Intn(2)], z, x),
				},
				nil,
				core.NewAtom(unary[rng.Intn(3)], x))
		}
		r.Label = fmt.Sprintf("fg%d", i)
		th.Add(r)
	}
	return th
}

// RandomGuardedTheory builds a random fully guarded theory over the same
// signature.
func RandomGuardedTheory(rules int, seed int64) *core.Theory {
	rng := rand.New(rand.NewSource(seed))
	unary := []string{"A", "B", "C"}
	binary := []string{"R", "S"}
	x, y := core.Var("X"), core.Var("Y")
	th := core.NewTheory()
	for i := 0; i < rules; i++ {
		var r *core.Rule
		switch rng.Intn(4) {
		case 0:
			r = core.NewRule(
				[]core.Atom{core.NewAtom(unary[rng.Intn(3)], x)},
				[]core.Term{y},
				core.NewAtom(binary[rng.Intn(2)], x, y))
		case 1:
			r = core.NewRule(
				[]core.Atom{core.NewAtom(binary[rng.Intn(2)], x, y)},
				nil,
				core.NewAtom(unary[rng.Intn(3)], y))
		case 2:
			r = core.NewRule(
				[]core.Atom{
					core.NewAtom(binary[rng.Intn(2)], x, y),
					core.NewAtom(unary[rng.Intn(3)], y),
				},
				nil,
				core.NewAtom(unary[rng.Intn(3)], x))
		case 3:
			r = core.NewRule(
				[]core.Atom{core.NewAtom(binary[rng.Intn(2)], x, y)},
				nil,
				core.NewAtom(binary[rng.Intn(2)], y, x))
		}
		r.Label = fmt.Sprintf("g%d", i)
		th.Add(r)
	}
	return th
}

// ABDatabase builds a database over the generated theories' signature.
func ABDatabase(n int, seed int64) *database.Database {
	rng := rand.New(rand.NewSource(seed))
	d := database.New()
	c := func(i int) core.Term { return core.Const(fmt.Sprintf("c%d", i)) }
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			d.Add(core.NewAtom([]string{"A", "B", "C"}[rng.Intn(3)], c(rng.Intn(n))))
		default:
			d.Add(core.NewAtom([]string{"R", "S"}[rng.Intn(2)], c(rng.Intn(n)), c(rng.Intn(n))))
		}
	}
	return d
}

// AdversarialNames builds a database over the random-theory signature
// (unary A/B/C, binary R/S) whose constant names embed NUL bytes and
// term-kind characters — the byte sequences that break naive
// separator-based key serialization (see the chase trigger-key
// regression). Engines keyed on interned ids are immune; engines that
// concatenate names are not.
func AdversarialNames(n int, seed int64) *database.Database {
	rng := rand.New(rand.NewSource(seed))
	d := database.New()
	c := func(i int) core.Term {
		switch i % 4 {
		case 0:
			return core.Const(fmt.Sprintf("a\x00%d", i))
		case 1:
			return core.Const(fmt.Sprintf("%d\x001a", i))
		case 2:
			return core.Const(fmt.Sprintf("\x00\x00%d", i))
		default:
			return core.Const(fmt.Sprintf("x%d", i))
		}
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			d.Add(core.NewAtom([]string{"A", "B", "C"}[rng.Intn(3)], c(rng.Intn(n))))
		default:
			d.Add(core.NewAtom([]string{"R", "S"}[rng.Intn(2)], c(rng.Intn(n)), c(rng.Intn(n))))
		}
	}
	return d
}

// RandomWFGTheory builds a random weakly frontier-guarded theory: nulls
// are invented at the first position of binary relations and joined with
// safe side conditions. Samples are not guaranteed to be wfg for every
// seed; callers filter with the classifier.
func RandomWFGTheory(rules int, seed int64) *core.Theory {
	rng := rand.New(rand.NewSource(seed))
	unary := []string{"A", "B", "C"}
	binary := []string{"R", "S"}
	x, y, z := core.Var("X"), core.Var("Y"), core.Var("Z")
	th := core.NewTheory()
	for i := 0; i < rules; i++ {
		var r *core.Rule
		switch rng.Intn(4) {
		case 0: // A(x) → ∃y R(y,x): nulls at position 1
			r = core.NewRule(
				[]core.Atom{core.NewAtom(unary[rng.Intn(3)], x)},
				[]core.Term{y},
				core.NewAtom(binary[rng.Intn(2)], y, x))
		case 1: // R(y,x), B(z) → P(y,z): unsafe frontier {y} guarded by R
			r = core.NewRule(
				[]core.Atom{
					core.NewAtom(binary[rng.Intn(2)], y, x),
					core.NewAtom(unary[rng.Intn(3)], z),
				},
				nil,
				core.NewAtom("P", y, z))
		case 2: // P(y,z), R(y,x) → Out(x,z): frontier safe
			r = core.NewRule(
				[]core.Atom{
					core.NewAtom("P", y, z),
					core.NewAtom(binary[rng.Intn(2)], y, x),
				},
				nil,
				core.NewAtom("Out", x, z))
		case 3: // R(y,x) → C(x): safe projection
			r = core.NewRule(
				[]core.Atom{core.NewAtom(binary[rng.Intn(2)], y, x)},
				nil,
				core.NewAtom(unary[rng.Intn(3)], x))
		}
		r.Label = fmt.Sprintf("wfg%d", i)
		th.Add(r)
	}
	return th
}

// JANotWATheory builds an n-stage theory that is jointly acyclic but not
// weakly acyclic: the stages form a special-edge cycle
// (A0,1) ⇒ (R0,2) → (A1,1) ⇒ … → (A0,1) in the position dependency
// graph, but the EDB-only side condition B{i} blocks the Move-set
// closure, so no existential variable depends on another. The restricted
// chase terminates on every database (B is never derived, so each null
// dies at the B-join).
func JANotWATheory(n int) *core.Theory {
	if n < 1 {
		n = 1
	}
	x, y, v := core.Var("X"), core.Var("Y"), core.Var("V")
	th := core.NewTheory()
	for i := 0; i < n; i++ {
		a, r, b := fmt.Sprintf("A%d", i), fmt.Sprintf("R%d", i), fmt.Sprintf("B%d", i)
		next := fmt.Sprintf("A%d", (i+1)%n)
		mint := core.NewRule(
			[]core.Atom{core.NewAtom(a, x)},
			[]core.Term{v},
			core.NewAtom(r, x, v))
		mint.Label = fmt.Sprintf("mint%d", i)
		feed := core.NewRule(
			[]core.Atom{core.NewAtom(r, x, y), core.NewAtom(b, y)},
			nil,
			core.NewAtom(next, y))
		feed.Label = fmt.Sprintf("feed%d", i)
		th.Add(mint, feed)
	}
	return th
}

// SWANotJATheory builds n independent copies of a theory that fails
// joint acyclicity but whose critical-instance chase saturates: the swap
// rule R(x,y) → R(y,x) drags both R positions (and via the diagonal rule
// (A,1)) into Move(V), closing the dependency V ⇝ V — yet no chase ever
// derives R(t,t) for a null t, so the feedback never realizes and the
// chase of every database is finite.
func SWANotJATheory(n int) *core.Theory {
	if n < 1 {
		n = 1
	}
	x, y, v := core.Var("X"), core.Var("Y"), core.Var("V")
	th := core.NewTheory()
	for i := 0; i < n; i++ {
		a, r := fmt.Sprintf("A%d", i), fmt.Sprintf("R%d", i)
		mint := core.NewRule(
			[]core.Atom{core.NewAtom(a, x)},
			[]core.Term{v},
			core.NewAtom(r, x, v))
		mint.Label = fmt.Sprintf("mint%d", i)
		swap := core.NewRule(
			[]core.Atom{core.NewAtom(r, x, y)},
			nil,
			core.NewAtom(r, y, x))
		swap.Label = fmt.Sprintf("swap%d", i)
		diag := core.NewRule(
			[]core.Atom{core.NewAtom(r, x, x)},
			nil,
			core.NewAtom(a, x))
		diag.Label = fmt.Sprintf("diag%d", i)
		th.Add(mint, swap, diag)
	}
	return th
}

// WAChainTheory builds a weakly acyclic chain of n value inventions
// S{i}(x,y) → ∃v S{i+1}(y,v): the position (S{i},2) has rank i, so the
// maximum rank (and with it the derived fact-bound degree) grows with n.
// Used by the analyzer benchmarks and the bound tests.
func WAChainTheory(n int) *core.Theory {
	if n < 1 {
		n = 1
	}
	x, y, v := core.Var("X"), core.Var("Y"), core.Var("V")
	th := core.NewTheory()
	for i := 0; i < n; i++ {
		r := core.NewRule(
			[]core.Atom{core.NewAtom(fmt.Sprintf("S%d", i), x, y)},
			[]core.Term{v},
			core.NewAtom(fmt.Sprintf("S%d", i+1), y, v))
		r.Label = fmt.Sprintf("chain%d", i)
		th.Add(r)
	}
	return th
}
