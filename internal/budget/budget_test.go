package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSentinelMatching(t *testing.T) {
	tr := Start(&T{MaxFacts: 10})
	defer tr.Stop()
	tr.AddFacts(10)
	tr.AddRules(3)
	err := tr.Exhausted(ErrFactLimit)
	if !errors.Is(err, ErrFactLimit) {
		t.Fatalf("errors.Is(err, ErrFactLimit) = false for %v", err)
	}
	if errors.Is(err, ErrRuleLimit) {
		t.Fatalf("fact-limit error must not match ErrRuleLimit")
	}
	var be *Error
	if !errors.As(err, &be) {
		t.Fatalf("errors.As(*Error) failed for %v", err)
	}
	if be.Usage.Facts != 10 || be.Usage.Rules != 3 {
		t.Fatalf("usage snapshot = %+v, want Facts=10 Rules=3", be.Usage)
	}
	if !IsBudget(err) {
		t.Fatalf("IsBudget(%v) = false", err)
	}
	if IsBudget(errors.New("unrelated")) {
		t.Fatalf("IsBudget matched an unrelated error")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tr := Start(&T{Ctx: ctx})
	defer tr.Stop()
	if err := tr.Check(); err != nil {
		t.Fatalf("pre-cancel Check() = %v, want nil", err)
	}
	cancel()
	err := tr.Check()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("post-cancel Check() = %v, want ErrCanceled", err)
	}
	// Context-aware callers match the standard sentinel too.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ErrCanceled error must also match context.Canceled")
	}
	if !tr.Canceled() {
		t.Fatalf("Canceled() = false after cancel")
	}
}

func TestDeadline(t *testing.T) {
	tr := Start(&T{Timeout: time.Nanosecond})
	defer tr.Stop()
	deadline := time.Now().Add(2 * time.Second)
	var err error
	for time.Now().Before(deadline) {
		if err = tr.Check(); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("Check() after timeout = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ErrDeadline error must also match context.DeadlineExceeded")
	}
}

func TestFailAtInjection(t *testing.T) {
	tr := Start(FailAt(3))
	defer tr.Stop()
	for i := 1; i <= 2; i++ {
		if err := tr.Check(); err != nil {
			t.Fatalf("checkpoint %d: unexpected %v", i, err)
		}
	}
	err := tr.Check()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("checkpoint 3: got %v, want injected ErrCanceled", err)
	}
	// The injection is sticky: later checkpoints stay canceled.
	if err := tr.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("checkpoint 4: got %v, want ErrCanceled", err)
	}
	if tr.Checkpoints() != 4 {
		t.Fatalf("Checkpoints() = %d, want 4", tr.Checkpoints())
	}
}

func TestNilBudgetTracker(t *testing.T) {
	tr := Start(nil)
	defer tr.Stop()
	for i := 0; i < 100; i++ {
		if err := tr.Check(); err != nil {
			t.Fatalf("nil-budget Check() = %v", err)
		}
	}
	if tr.Canceled() {
		t.Fatalf("nil-budget tracker reports canceled")
	}
	tr.AddSteps(7)
	tr.SetRounds(2)
	u := tr.Usage()
	if u.Steps != 7 || u.Rounds != 2 {
		t.Fatalf("usage = %+v, want Steps=7 Rounds=2", u)
	}
}

func TestCapResolution(t *testing.T) {
	maxFacts := func(b *T) int { return b.MaxFacts }
	if got := Cap(nil, maxFacts, 500); got != 500 {
		t.Fatalf("Cap(nil) = %d, want legacy 500", got)
	}
	if got := Cap(&T{}, maxFacts, 500); got != 500 {
		t.Fatalf("Cap(zero budget) = %d, want legacy 500", got)
	}
	if got := Cap(&T{MaxFacts: 7}, maxFacts, 500); got != 7 {
		t.Fatalf("Cap(MaxFacts=7) = %d, want 7", got)
	}
}

func TestWithFailAt(t *testing.T) {
	b := T{MaxFacts: 9}
	fb := b.WithFailAt(2)
	if fb.MaxFacts != 9 || fb.FailAtCheckpoint != 2 {
		t.Fatalf("WithFailAt = %+v", fb)
	}
	if b.FailAtCheckpoint != 0 {
		t.Fatalf("WithFailAt mutated the receiver")
	}
}
