// Package budget is the unified resource-governance layer of the
// reproduction's fixpoint and expansion engines.
//
// Every engine in this repository runs a potentially explosive
// construction: the chase need not terminate at all, the
// frontier-guarded expansion ex(Σ) is single-exponential by design
// (Theorem 1 of the paper), and the guarded saturation Ξ(Σ) is
// double-exponential (Theorem 3). A budget turns those blow-ups into
// governed, observable failures instead of runaway processes:
//
//   - T declares what a run may consume: a cancellation context, a
//     wall-clock timeout, and fact/rule/round/step ceilings.
//   - Tracker is the runtime side: engines bump its counters as they
//     derive facts, emit rules and complete rounds, and poll Check at
//     their checkpoints (typically once per round or work item).
//   - On exhaustion the engine returns the partial result computed so
//     far alongside a typed *Error that wraps one of the sentinel
//     reasons below and a Usage snapshot, so callers can both degrade
//     gracefully and report precisely what was spent.
//
// The FailAt constructor provides deterministic fault injection: a
// budget that cancels itself at the nth checkpoint, used by the engine
// shutdown tests to prove clean cancellation (no goroutine leaks, no
// lost wake-ups) at every interleaving point.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Sentinel reasons for budget exhaustion. Engine errors wrap exactly one
// of these; match with errors.Is(err, budget.Err...).
var (
	// ErrCanceled reports that the run's context was canceled (including
	// injected FailAt cancellations). errors.Is also matches
	// context.Canceled.
	ErrCanceled = errors.New("budget: run canceled")
	// ErrDeadline reports that the wall-clock deadline passed.
	// errors.Is also matches context.DeadlineExceeded.
	ErrDeadline = errors.New("budget: deadline exceeded")
	// ErrFactLimit reports that a fact ceiling was hit (the chase budget
	// against non-terminating fixpoints).
	ErrFactLimit = errors.New("budget: fact limit exceeded")
	// ErrRuleLimit reports that a rule ceiling was hit (the expansion and
	// saturation budgets against the exponential translations).
	ErrRuleLimit = errors.New("budget: rule limit exceeded")
	// ErrRoundLimit reports that a fixpoint round ceiling was hit.
	ErrRoundLimit = errors.New("budget: round limit exceeded")
	// ErrStepLimit reports that a step ceiling was hit (trigger
	// applications in the chase, inference applications in saturation).
	ErrStepLimit = errors.New("budget: step limit exceeded")
	// ErrDepthLimit reports that the chase null-depth bound truncated the
	// run. Depth truncation is a semantic under-approximation bound, not
	// a resource failure: chase runs record it as the truncation Reason
	// without returning an error.
	ErrDepthLimit = errors.New("budget: null-depth limit reached")
)

// sentinels lists every exhaustion reason, for IsBudget.
var sentinels = []error{
	ErrCanceled, ErrDeadline, ErrFactLimit, ErrRuleLimit,
	ErrRoundLimit, ErrStepLimit, ErrDepthLimit,
}

// IsBudget reports whether err is (or wraps) any budget sentinel: a
// governed exhaustion rather than an input or internal error. Callers
// use it to decide whether a returned partial result is meaningful.
func IsBudget(err error) bool {
	for _, s := range sentinels {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

// Usage is a snapshot of the work a run had performed when a budget
// error fired (or, via Tracker.Usage, at any point during the run).
type Usage struct {
	// Facts is the number of facts derived (database insertions observed
	// by the engine, not counting the input).
	Facts int
	// Rules is the number of rules emitted (expansion / saturation
	// output, or rules fired where no rules are emitted).
	Rules int
	// Rounds is the number of fixpoint rounds completed.
	Rounds int
	// Steps counts elementary engine steps: trigger applications in the
	// chase, inference applications in saturation.
	Steps int
	// Elapsed is the wall-clock time since the tracker started.
	Elapsed time.Duration
}

// Error is a typed budget-exhaustion error: a sentinel Reason plus the
// Usage at the moment it fired. errors.Is(err, target) matches the
// Reason, and additionally context.Canceled / context.DeadlineExceeded
// for the cancellation reasons, so context-aware callers need no
// special cases.
type Error struct {
	Reason error
	Usage  Usage
}

func (e *Error) Error() string {
	return fmt.Sprintf("%v (facts=%d rules=%d rounds=%d steps=%d elapsed=%s)",
		e.Reason, e.Usage.Facts, e.Usage.Rules, e.Usage.Rounds, e.Usage.Steps,
		e.Usage.Elapsed.Round(time.Microsecond))
}

// Unwrap exposes the sentinel reason to errors.Is / errors.As chains.
func (e *Error) Unwrap() error { return e.Reason }

// Is extends matching to the standard context errors.
func (e *Error) Is(target error) bool {
	if target == e.Reason {
		return true
	}
	switch e.Reason {
	case ErrCanceled:
		return target == context.Canceled
	case ErrDeadline:
		return target == context.DeadlineExceeded
	}
	return false
}

// T declares the resource budget of one engine run. The zero value (and
// a nil *T) means "engine defaults": no context, no deadline, and the
// engine's legacy Max* ceilings. Ceilings set here override the
// corresponding legacy Options fields of the engine.
type T struct {
	// Ctx is the cancellation source; nil means context.Background().
	// Cancel it to stop the run with ErrCanceled and a partial result.
	Ctx context.Context
	// Timeout is the wall-clock budget; 0 means none. Exceeding it stops
	// the run with ErrDeadline and a partial result.
	Timeout time.Duration
	// MaxFacts caps derived facts (0 = engine default): ErrFactLimit.
	MaxFacts int
	// MaxRules caps emitted rules (0 = engine default): ErrRuleLimit.
	MaxRules int
	// MaxRounds caps fixpoint rounds (0 = engine default): ErrRoundLimit.
	MaxRounds int
	// MaxSteps caps elementary steps (0 = engine default): ErrStepLimit.
	MaxSteps int
	// FailAtCheckpoint injects a cancellation once the run's checkpoint
	// counter reaches this value (0 = off). Deterministic fault
	// injection for shutdown tests; see FailAt.
	FailAtCheckpoint int64
	// PanicAtCheckpoint injects a panic (an InjectedPanic value) at
	// exactly the nth checkpoint (0 = off). Deterministic fault injection
	// for the panic-containment layers: checkpoints polled on engine
	// worker goroutines exercise par.RunUnits recovery, checkpoints on
	// the request goroutine exercise the HTTP recovery middleware.
	PanicAtCheckpoint int64
}

// FailAt returns a budget that cancels itself at the nth checkpoint of
// the run. Tests iterate n over 1..total-checkpoints to exercise clean
// shutdown at every interleaving point.
func FailAt(n int) *T { return &T{FailAtCheckpoint: int64(n)} }

// PanicAt returns a budget that panics at exactly the nth checkpoint of
// the run, for driving the panic-containment layers deterministically.
func PanicAt(n int) *T { return &T{PanicAtCheckpoint: int64(n)} }

// InjectedPanic is the value thrown by a PanicAt budget, distinctive so
// containment tests can assert the recovered panic is the injected one.
type InjectedPanic struct {
	// Checkpoint is the checkpoint counter value that fired the panic.
	Checkpoint int64
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("budget: injected panic at checkpoint %d", p.Checkpoint)
}

// WithFailAt returns a copy of b that additionally cancels at the nth
// checkpoint.
func (b T) WithFailAt(n int) *T {
	b.FailAtCheckpoint = int64(n)
	return &b
}

// Cap resolves an effective ceiling: the budget's own max when set,
// otherwise the engine's legacy value. Nil-safe.
func Cap(b *T, budgetMax func(*T) int, legacy int) int {
	if b != nil {
		if m := budgetMax(b); m > 0 {
			return m
		}
	}
	return legacy
}

// Tracker is the runtime state of a budget-governed run: atomic usage
// counters, a checkpoint counter, and the derived cancellation context.
// All methods are safe for concurrent use by engine worker pools.
//
// Engines create one with Start at the top of a run, defer Stop, bump
// the counters as they work, and poll Check at every checkpoint.
type Tracker struct {
	spec        T
	ctx         context.Context
	cancel      context.CancelFunc
	start       time.Time
	checkpoints atomic.Int64
	facts       atomic.Int64
	rules       atomic.Int64
	rounds      atomic.Int64
	steps       atomic.Int64
}

// Start begins tracking budget b. A nil b yields a tracker that only
// counts usage: Check never fails and costs one atomic add. Callers
// must Stop the tracker when the run ends to release the deadline
// timer.
func Start(b *T) *Tracker {
	tr := &Tracker{start: time.Now()}
	if b == nil {
		return tr
	}
	tr.spec = *b
	if b.Ctx != nil || b.Timeout > 0 || b.FailAtCheckpoint > 0 {
		ctx := b.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		if b.Timeout > 0 {
			tr.ctx, tr.cancel = context.WithTimeout(ctx, b.Timeout)
		} else {
			tr.ctx, tr.cancel = context.WithCancel(ctx)
		}
	}
	return tr
}

// Stop releases the tracker's context resources. Idempotent; safe on
// nil trackers and trackers started from a nil budget.
func (tr *Tracker) Stop() {
	if tr != nil && tr.cancel != nil {
		tr.cancel()
	}
}

// Check is the engine checkpoint: it increments the checkpoint counter,
// fires a FailAt injection when due, and reports cancellation or
// deadline expiry as a typed *Error carrying the current usage. It
// never blocks; a nil error means the run may proceed.
// All Tracker methods are safe on a nil receiver (a nil tracker counts
// nothing and never cancels), so engine internals can be exercised
// without wiring a budget.
func (tr *Tracker) Check() error {
	if tr == nil {
		return nil
	}
	n := tr.checkpoints.Add(1)
	// The == makes the injection one-shot: exactly one goroutine observes
	// the matching counter value, so exactly one panic fires per run.
	if pa := tr.spec.PanicAtCheckpoint; pa > 0 && n == pa {
		panic(InjectedPanic{Checkpoint: n})
	}
	if tr.ctx == nil {
		return nil
	}
	if fe := tr.spec.FailAtCheckpoint; fe > 0 && n >= fe {
		tr.cancel()
	}
	select {
	case <-tr.ctx.Done():
		reason := ErrCanceled
		if errors.Is(context.Cause(tr.ctx), context.DeadlineExceeded) {
			reason = ErrDeadline
		}
		return tr.Exhausted(reason)
	default:
		return nil
	}
}

// Canceled reports whether the run's context is done, without counting
// a checkpoint. Worker inner loops use it as a cheap drain signal.
func (tr *Tracker) Canceled() bool {
	if tr == nil || tr.ctx == nil {
		return false
	}
	select {
	case <-tr.ctx.Done():
		return true
	default:
		return false
	}
}

// Checkpoints returns how many checkpoints the run has passed.
func (tr *Tracker) Checkpoints() int64 {
	if tr == nil {
		return 0
	}
	return tr.checkpoints.Load()
}

// AddFacts records n derived facts.
func (tr *Tracker) AddFacts(n int) {
	if tr != nil {
		tr.facts.Add(int64(n))
	}
}

// AddRules records n emitted rules.
func (tr *Tracker) AddRules(n int) {
	if tr != nil {
		tr.rules.Add(int64(n))
	}
}

// AddSteps records n elementary steps.
func (tr *Tracker) AddSteps(n int) {
	if tr != nil {
		tr.steps.Add(int64(n))
	}
}

// SetRounds records the number of completed fixpoint rounds.
func (tr *Tracker) SetRounds(n int) {
	if tr != nil {
		tr.rounds.Store(int64(n))
	}
}

// Usage snapshots the tracker's counters.
func (tr *Tracker) Usage() Usage {
	if tr == nil {
		return Usage{}
	}
	return Usage{
		Facts:   int(tr.facts.Load()),
		Rules:   int(tr.rules.Load()),
		Rounds:  int(tr.rounds.Load()),
		Steps:   int(tr.steps.Load()),
		Elapsed: time.Since(tr.start),
	}
}

// Exhausted builds the typed error for the given sentinel reason with
// the current usage snapshot. Engines call it at the point a ceiling
// trips, then return it alongside their partial result.
func (tr *Tracker) Exhausted(reason error) *Error {
	if tr == nil {
		return &Error{Reason: reason}
	}
	return &Error{Reason: reason, Usage: tr.Usage()}
}
