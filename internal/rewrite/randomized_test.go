package rewrite

import (
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/gen"
	"guardedrules/internal/normalize"
	"guardedrules/internal/termination"
)

// Theorem 1 randomized: on weakly acyclic random frontier-guarded
// theories (whose chases saturate), rew(Σ) must be nearly guarded and
// yield exactly the same ground atoms over Σ's signature.
func TestTheoremOneRandomized(t *testing.T) {
	tested := 0
	for seed := int64(0); seed < 60 && tested < 12; seed++ {
		th := gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 5, Seed: seed})
		if !termination.IsWeaklyAcyclic(th) {
			continue
		}
		norm := normalize.Normalize(th)
		rew, _, err := Rewrite(norm, Options{})
		if err != nil {
			t.Fatalf("seed %d: rewrite failed: %v\n%v", seed, err, th)
		}
		if !classify.Classify(rew).Member[classify.NearlyGuarded] {
			t.Fatalf("seed %d: rew not nearly guarded", seed)
		}
		tested++
		for dbSeed := int64(0); dbSeed < 2; dbSeed++ {
			d := gen.ABDatabase(5, seed*100+dbSeed)
			r1, err := chase.Run(th, d, chase.Options{Variant: chase.Restricted, MaxFacts: 300_000, MaxRounds: 5_000})
			if err != nil {
				t.Fatal(err)
			}
			if !r1.Saturated {
				t.Fatalf("seed %d: weakly acyclic chase did not saturate", seed)
			}
			r2, err := chase.Run(rew, d, chase.Options{Variant: chase.Restricted, MaxFacts: 2_000_000, MaxRounds: 20_000})
			if err != nil {
				t.Fatal(err)
			}
			if !r2.Saturated {
				t.Fatalf("seed %d: rew chase did not saturate", seed)
			}
			rels := make(map[string]bool)
			for _, rk := range th.Relations() {
				rels[rk.Name] = true
			}
			a := r1.DB.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
			b := r2.DB.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
			if ok, diff := database.SameGroundAtoms(a, b); !ok {
				t.Errorf("seed %d db %d: %s\ntheory:\n%v", seed, dbSeed, diff, th)
			}
		}
	}
	if tested < 5 {
		t.Fatalf("only %d weakly acyclic samples; generator too restrictive", tested)
	}
}
