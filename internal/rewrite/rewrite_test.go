package rewrite

import (
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/normalize"
	"guardedrules/internal/parser"
	"guardedrules/internal/saturate"
)

const sigmaP = `
Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
Keywords(X,K1,K2) -> hasTopic(X,K1).
hasTopic(X,Z), hasAuthor(X,U), hasAuthor(Y,U),
  hasTopic(Y,Z2), Scientific(Z2), citedIn(Y,X) -> Scientific(Z).
hasAuthor(X,Y), hasTopic(X,Z), Scientific(Z) -> Q(Y).
`

const exampleDB = `
Publication(p1). Publication(p2).
citedIn(p1,p2).
hasAuthor(p1,a1). hasAuthor(p2,a1). hasAuthor(p2,a2).
hasTopic(p1,t1). Scientific(t1).
`

func TestSelectionsEnumeration(t *testing.T) {
	th := parser.MustParseTheory(`R(X,Y), S(Y,Z) -> P(X).`)
	r := th.Rules[0]
	sels := selections(r, 2)
	if len(sels) == 0 {
		t.Fatal("no selections enumerated")
	}
	seen := make(map[string]bool)
	for _, sel := range sels {
		// Idempotency and range bound.
		ran := make(core.TermSet)
		for v, w := range sel.m {
			ran.Add(w)
			if m, ok := sel.m[w]; !ok || m != w {
				t.Fatalf("selection not idempotent: %v -> %v", v, w)
			}
		}
		if len(ran) > 2 {
			t.Fatalf("range exceeds k: %v", sel.m)
		}
		key := ""
		for _, v := range sel.dom().Sorted() {
			key += v.Name + ">" + sel.m[v].Name + ";"
		}
		if seen[key] {
			t.Fatalf("duplicate selection %s", key)
		}
		seen[key] = true
	}
}

func TestCoveredAndKeep(t *testing.T) {
	// Example 3 of the paper: σ = R(x0,x1),R(x1,x2),R(x2,x3),R(x3,x4),
	// R(x4,x1) → P(x1), µ = {x4→x2, x2→x2, x3→x3}.
	th := parser.MustParseTheory(`R(X0,X1), R(X1,X2), R(X2,X3), R(X3,X4), R(X4,X1) -> P(X1).`)
	r := th.Rules[0]
	sel := selection{m: core.Subst{
		core.Var("X4"): core.Var("X2"),
		core.Var("X2"): core.Var("X2"),
		core.Var("X3"): core.Var("X3"),
	}}
	cov := covered(r, sel)
	if len(cov) != 2 {
		t.Fatalf("cov: %v (want R(X2,X3), R(X3,X4))", cov)
	}
	keep := keepVars(r, sel, cov, "rc")
	if len(keep) != 1 || !keep.Has(core.Var("X2")) {
		t.Errorf("keep: %v (want {X2})", keep)
	}
}

func TestExampleFourKeep(t *testing.T) {
	// Example 4: σ4 with µ = {x→x, z→z}: cov = {hasTopic(x,z),
	// Scientific(z)}, keep = {x}.
	th := parser.MustParseTheory(`hasAuthor(X,Y), hasTopic(X,Z), Scientific(Z) -> Q(Y).`)
	r := th.Rules[0]
	sel := selection{m: core.Subst{core.Var("X"): core.Var("X"), core.Var("Z"): core.Var("Z")}}
	cov := covered(r, sel)
	if len(cov) != 2 {
		t.Fatalf("cov: %v", cov)
	}
	keep := keepVars(r, sel, cov, "rc")
	if len(keep) != 1 || !keep.Has(core.Var("X")) {
		t.Errorf("keep: %v (want {X})", keep)
	}
}

func TestRewriteIsNearlyGuarded(t *testing.T) {
	th := normalize.Normalize(parser.MustParseTheory(sigmaP))
	rew, stats, err := Rewrite(th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ExpansionRules <= stats.InputRules {
		t.Errorf("expansion did not grow: %+v", stats)
	}
	rep := classify.Classify(rew)
	if !rep.Member[classify.NearlyGuarded] {
		t.Errorf("Proposition 3 violated: rew(Σ) not nearly guarded (offender %v)", rep.Offender[classify.NearlyGuarded])
	}
}

// Theorem 1 on the running example: the rewriting must preserve Q answers.
func TestTheoremOneRunningExample(t *testing.T) {
	th := normalize.Normalize(parser.MustParseTheory(sigmaP))
	rew, _, err := Rewrite(th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := database.FromAtoms(parser.MustParseFacts(exampleDB))
	res, err := chase.Run(rew, d, chase.Options{Variant: chase.Restricted, MaxDepth: 6, MaxFacts: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"a1", "a2"} {
		if !res.Entails(core.NewAtom("Q", core.Const(c))) {
			t.Errorf("rew(Σ) must entail Q(%s)", c)
		}
	}
	if res.Entails(core.NewAtom("Q", core.Const("p1"))) {
		t.Error("rew(Σ) must not entail Q(p1)")
	}
}

// The full Figure 1 path: frontier-guarded → nearly guarded → Datalog.
// Saturating the full rew(Σp) is double-exponential territory (Section 6
// discusses the unavoidable blow-up), so the end-to-end Datalog path is
// exercised on a compact frontier-guarded theory; rew(Σp) itself is
// validated against the chase in TestTheoremOneRunningExample.
func TestFrontierGuardedToDatalogPipeline(t *testing.T) {
	th := normalize.Normalize(parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), B(X) -> S(Y).
		R(X,Y), S(Y) -> Q(X).
	`))
	rew, _, err := Rewrite(th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dat, _, err := saturate.NearlyGuardedToDatalog(rew, saturate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := database.FromAtoms(parser.MustParseFacts(`A(a). A(b). B(a).`))
	ans, err := datalog.Answers(dat, "Q", d)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]core.Term{{core.Const("a")}}
	if ok, diff := datalog.SameAnswers(ans, want); !ok {
		t.Errorf("pipeline answers wrong: %s (got %v)", diff, ans)
	}
}

// agree checks Theorem 1 on a theory/database pair by comparing the ground
// atoms over the original signature.
func agree(t *testing.T, theory, facts string) {
	t.Helper()
	orig := parser.MustParseTheory(theory)
	th := normalize.Normalize(orig)
	rew, _, err := Rewrite(th, Options{})
	if err != nil {
		t.Fatalf("rewrite failed for %q: %v", theory, err)
	}
	d := database.FromAtoms(parser.MustParseFacts(facts))
	rels := make(map[string]bool)
	for _, rk := range orig.Relations() {
		rels[rk.Name] = true
	}
	chOrig, err := chase.Run(orig, d, chase.Options{Variant: chase.Restricted, MaxDepth: 6, MaxFacts: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	chRew, err := chase.Run(rew, d, chase.Options{Variant: chase.Restricted, MaxDepth: 6, MaxFacts: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	a := chOrig.DB.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
	b := chRew.DB.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
	if ok, diff := database.SameGroundAtoms(a, b); !ok {
		t.Errorf("theory %q on %q: %s", theory, facts, diff)
	}
}

func TestTheoremOneMore(t *testing.T) {
	// A frontier-guarded cycle rule (in the spirit of Example 3).
	agree(t, `
		A(X) -> exists Y. R(X,Y).
		R(X0,X1), R(X1,X2), R(X2,X0) -> P(X0).
	`, `A(a). R(a,b). R(b,c). R(c,a).`)
	// Non-guarded join through nulls.
	agree(t, `
		A(X) -> exists Y. R(X,Y).
		R(X,Y), B(X) -> S(Y).
		R(X,Y), S(Y) -> Hit(X).
	`, `A(a). A(b). B(a). B(b).`)
	// Frontier variable reachable only through a null chain.
	agree(t, `
		Start(X) -> exists Y. E(X,Y).
		E(X,Y), Mark(X) -> Mark2(Y).
		E(X,Y), Mark2(Y) -> Good(X).
	`, `Start(s). Mark(s).`)
}

func TestRewriteRejectsNonNearlyFG(t *testing.T) {
	// Unsafe non-frontier-guarded rule: not nearly frontier-guarded.
	th := normalize.Normalize(parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), R(Z,Y), B(X), B(Z) -> P(X,Z).
	`))
	if _, _, err := Rewrite(th, Options{}); err == nil {
		t.Error("non-(nearly-)frontier-guarded theory must be rejected")
	}
}

func TestDefinitionFourteenPassthrough(t *testing.T) {
	// Transitive closure is safe Datalog and must pass through untouched,
	// while the guarded existential part is rewritten.
	th := normalize.Normalize(parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`))
	rew, stats, err := Rewrite(th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Passthrough != 1 {
		t.Errorf("expected 1 passthrough rule (transitivity), got %d", stats.Passthrough)
	}
	d := database.FromAtoms(parser.MustParseFacts(`E(a,b). E(b,c).`))
	res, err := chase.Run(rew, d, chase.Options{Variant: chase.Restricted, MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Entails(core.NewAtom("T", core.Const("a"), core.Const("c"))) {
		t.Error("transitive closure must survive the rewriting")
	}
}

func TestAxiomatizeACDom(t *testing.T) {
	th := normalize.Normalize(parser.MustParseTheory(sigmaP))
	rew, _, err := Rewrite(th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	star := Axiomatize(rew)
	// Σ* must not use the built-in ACDom.
	for _, r := range star.Rules {
		for _, a := range r.AllAtoms() {
			if a.Relation == core.ACDom {
				t.Fatalf("Σ* still uses %s: %v", core.ACDom, r)
			}
		}
	}
	// Same answers: Q* over Σ* equals Q over Σ.
	d := database.FromAtoms(parser.MustParseFacts(exampleDB))
	r1, err := chase.Run(rew, d, chase.Options{Variant: chase.Restricted, MaxDepth: 6, MaxFacts: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := chase.Run(star, d, chase.Options{Variant: chase.Restricted, MaxDepth: 6, MaxFacts: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"a1", "a2"} {
		want := r1.Entails(core.NewAtom("Q", core.Const(c)))
		got := r2.Entails(core.NewAtom(Star("Q"), core.Const(c)))
		if want != got {
			t.Errorf("Q*(%s): got %v want %v", c, got, want)
		}
	}
}

func TestGuardTuples(t *testing.T) {
	x, y := core.Var("X"), core.Var("Y")
	ts := guardTuples(2, []core.Term{x, y}, nil, nil, core.NewTermSet(x, y))
	// Exactly (x,y) and (y,x).
	if len(ts) != 2 {
		t.Errorf("guardTuples: %v", ts)
	}
	// Arity too small: no tuples.
	if got := guardTuples(1, []core.Term{x, y}, nil, nil, nil); got != nil {
		t.Errorf("expected none, got %v", got)
	}
	// Padding: arity 3, need {x}: tuples must all contain x.
	for _, tu := range guardTuples(3, []core.Term{x}, nil, nil, core.NewTermSet(x)) {
		found := false
		for _, v := range tu {
			if v == x {
				found = true
			}
		}
		if !found {
			t.Errorf("tuple misses needed var: %v", tu)
		}
	}
	// requireExtra: every tuple contains y.
	for _, tu := range guardTuples(2, []core.Term{x}, []core.Term{y}, []core.Term{y}, core.NewTermSet(x, y)) {
		found := false
		for _, v := range tu {
			if v == y {
				found = true
			}
		}
		if !found {
			t.Errorf("tuple misses required extra: %v", tu)
		}
	}
}

// The rewriting shapes of the paper's Examples 3 and 5: rc produces a
// guarded σ′ and a rule with strictly fewer variables outside the frontier
// guard; rnc produces a frontier-guarded σ′ and a guarded σ′′.
func TestExampleThreeSplitShapes(t *testing.T) {
	th := parser.MustParseTheory(`R(X0,X1), R(X1,X2), R(X2,X3), R(X3,X4), R(X4,X1) -> P(X1).`)
	r := th.Rules[0]
	sel := selection{m: core.Subst{
		core.Var("X4"): core.Var("X2"),
		core.Var("X2"): core.Var("X2"),
		core.Var("X3"): core.Var("X3"),
	}}
	sp, ok, err := buildSplit(r, sel, "rc")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Example 3's rc split must be admissible")
	}
	// removed = µ(cov) = {R(X2,X3), R(X3,X2)}; kept has the remaining
	// atoms with X4 renamed to X2; the head keeps P(X1).
	if len(sp.removed) != 2 {
		t.Errorf("removed: %v", sp.removed)
	}
	if len(sp.hAtom.Args) != 1 || sp.hAtom.Args[0] != core.Var("X2") {
		t.Errorf("H args: %v (want {X2})", sp.hAtom.Args)
	}
	if sp.head.Relation != "P" {
		t.Errorf("head: %v", sp.head)
	}
	// The σ′′-style remainder has fewer variables than σ (X3, X4 vanish).
	keptVars := core.VarsOf(sp.kept)
	keptVars.AddAll(core.NewTermSet(sp.hAtom.Args...))
	if len(keptVars) >= len(r.UVars()) {
		t.Errorf("no variable projection: %v vs %v", keptVars, r.UVars())
	}
}

func TestExampleFiveSplitShapes(t *testing.T) {
	th := parser.MustParseTheory(`R(X1,X2), R(X2,X3), R(X3,X4), R(X4,X1), R(X4,X5) -> P(X1,X2).`)
	r := th.Rules[0]
	sel := selection{m: core.Subst{
		core.Var("X1"): core.Var("X1"),
		core.Var("X2"): core.Var("X2"),
		core.Var("X3"): core.Var("X3"),
	}}
	cov := covered(r, sel)
	if len(cov) != 2 { // R(X1,X2), R(X2,X3)
		t.Fatalf("cov: %v", cov)
	}
	keep := keepVars(r, sel, cov, "rnc")
	// Example 5: keep = {x1, x3} (x2 occurs in the head but not in
	// body\cov, so it is re-bound through µ(cov) in σ′′).
	if len(keep) != 2 || !keep.Has(core.Var("X1")) || !keep.Has(core.Var("X3")) {
		t.Errorf("keep: %v (want {X1,X3})", keep)
	}
	sp, ok, err := buildSplit(r, sel, "rnc")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Example 5's rnc split must be admissible")
	}
	// removed = µ(body\cov): three atoms over X3,X4,X1,X5.
	if len(sp.removed) != 3 {
		t.Errorf("removed: %v", sp.removed)
	}
	if len(sp.kept) != 2 {
		t.Errorf("kept: %v", sp.kept)
	}
}

// The measure (variables outside the best frontier guard) strictly
// decreases along enqueue-eligible rewritings — the paper's termination
// argument for the expansion.
func TestMeasureDecreasesOnEnqueuedRules(t *testing.T) {
	th := normalize.Normalize(parser.MustParseTheory(sigmaP))
	_, stats, err := Rewrite(th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Splits == 0 {
		t.Fatal("expected splits")
	}
	// Termination itself is the assertion: Rewrite returned. Sanity-check
	// the measure function: on Example 3's rewritten shape the frontier
	// guard R(X0,X1) leaves only X2 outside, and a guarded rule has
	// measure 0.
	r := parser.MustParseTheory(`R(X0,X1), R(X1,X2), R(X2,X1), A(X2) -> P(X1).`).Rules[0]
	if m := measure(r); m != 1 {
		t.Errorf("measure: got %d want 1", m)
	}
	guarded := parser.MustParseTheory(`R(X0,X1) -> P(X1).`).Rules[0]
	if m := measure(guarded); m != 0 {
		t.Errorf("guarded rule must have measure 0, got %d", m)
	}
}

// canonSplit: isomorphic splits share keys and receive corresponding H
// argument orders; different kinds and structures get distinct keys.
func TestCanonSplitIsomorphismInvariance(t *testing.T) {
	build := func(src string, m core.Subst, kind string) (string, split) {
		r := parser.MustParseTheory(src).Rules[0]
		sp, ok, err := buildSplit(r, selection{m: m}, kind)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("split not admissible for %q (%s)", src, kind)
		}
		key, csp := canonSplit(sp)
		return key, csp
	}
	exampleThree := `R(X0,X1), R(X1,X2), R(X2,X3), R(X3,X4), R(X4,X1) -> P(X1).`
	mu := core.Subst{core.Var("X4"): core.Var("X2"), core.Var("X2"): core.Var("X2"), core.Var("X3"): core.Var("X3")}
	k1, s1 := build(exampleThree, mu, "rc")
	// The same rule with all variables renamed.
	k2, s2 := build(`R(A0,A1), R(A1,A2), R(A2,A3), R(A3,A4), R(A4,A1) -> P(A1).`,
		core.Subst{core.Var("A4"): core.Var("A2"), core.Var("A2"): core.Var("A2"), core.Var("A3"): core.Var("A3")}, "rc")
	if k1 != k2 {
		t.Errorf("isomorphic splits must share keys:\n%s\n%s", k1, k2)
	}
	if len(s1.hAtom.Args) != len(s2.hAtom.Args) {
		t.Errorf("H arities differ: %v vs %v", s1.hAtom, s2.hAtom)
	}
	// A symmetric selection of the same rule (X2 and X4 swapped roles):
	// still the same split up to isomorphism.
	k3, _ := build(exampleThree,
		core.Subst{core.Var("X2"): core.Var("X4"), core.Var("X4"): core.Var("X4"), core.Var("X3"): core.Var("X3")}, "rc")
	if k3 != k1 {
		t.Errorf("automorphic selections must share keys:\n%s\n%s", k3, k1)
	}
	// Keys embed the kind: an rnc split of a different rule never matches.
	rncRule := `R(X1,X2), R(X2,X3), R(X3,X4), R(X4,X1), R(X4,X5) -> P(X1,X2).`
	k4, _ := build(rncRule,
		core.Subst{core.Var("X1"): core.Var("X1"), core.Var("X2"): core.Var("X2"), core.Var("X3"): core.Var("X3")}, "rnc")
	if k4 == k1 {
		t.Error("rc and rnc splits must have distinct keys")
	}
}

// Expansion caps turn blow-ups into errors rather than hangs.
func TestExpansionCaps(t *testing.T) {
	th := normalize.Normalize(parser.MustParseTheory(sigmaP))
	if _, _, err := Rewrite(th, Options{MaxRules: 20}); err == nil {
		t.Error("tiny cap must trigger")
	}
	big := parser.MustParseTheory(
		`R(X1,X2), R(X2,X3), R(X3,X4), R(X4,X5), R(X5,X6), R(X6,X7), R(X7,X8), R(X8,X9), R(X9,X10), R(X10,X1) -> P(X1).`)
	if _, _, err := Rewrite(normalize.Normalize(big), Options{MaxRuleVars: 4}); err == nil {
		t.Error("variable cap must trigger")
	}
}
