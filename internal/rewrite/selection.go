// Package rewrite implements the translation from (nearly)
// frontier-guarded theories to nearly guarded theories of Section 5.1 of
// the paper: selections (Definition 7), covered atoms (Definition 8),
// keep-sets (Definition 9), rc- and rnc-rewritings (Definitions 10, 11),
// the expansion ex(Σ) (Definition 12), the rewriting rew(Σ)
// (Definitions 13, 14, Theorem 1, Proposition 4), and the ACDom
// axiomatization Σ* (Definition 15, Proposition 5).
package rewrite

import (
	"guardedrules/internal/core"
)

// selection is a selection for a rule σ (Definition 7): a partial function
// µ from uvars(σ) to uvars(σ) with |ran(µ)| ≤ k, k the maximal relation
// arity of the theory. Only idempotent selections are enumerated
// (µ(x) = x for x in ran(µ)): in the completeness argument a selection
// merges the variables that a chase homomorphism sends to the same term of
// a tree node and picks a representative per class, which is idempotent up
// to renaming.
type selection struct {
	m core.Subst // total on dom(µ)
}

func (sel selection) dom() core.TermSet {
	s := make(core.TermSet, len(sel.m))
	for v := range sel.m {
		s.Add(v)
	}
	return s
}

// apply is µ(Γ) of Definition 7.
func (sel selection) apply(atoms []core.Atom) []core.Atom {
	return sel.m.ApplyAtoms(atoms)
}

// selections enumerates the idempotent selections for the rule. k is the
// maximal relation arity of the theory.
func selections(r *core.Rule, k int) []selection {
	uv := r.UVars().Sorted()
	var out []selection
	n := len(uv)
	// Choose the range S (fixed points), then map every other variable to
	// an element of S or leave it out of dom(µ).
	var chooseRange func(start int, ran []core.Term)
	chooseRange = func(start int, ran []core.Term) {
		if len(ran) > 0 {
			out = append(out, mapsInto(uv, ran)...)
		}
		if len(ran) == k {
			return
		}
		for i := start; i < n; i++ {
			chooseRange(i+1, append(ran, uv[i]))
		}
	}
	chooseRange(0, nil)
	// The empty selection (dom(µ) = ∅) covers no atoms and never yields a
	// rewriting, so it is omitted.
	return out
}

// mapsInto enumerates the selections with the given fixed-point range:
// every non-range variable is either unmapped or mapped to a range
// element.
func mapsInto(uv []core.Term, ran []core.Term) []selection {
	inRan := core.NewTermSet(ran...)
	var rest []core.Term
	for _, v := range uv {
		if !inRan.Has(v) {
			rest = append(rest, v)
		}
	}
	base := core.Subst{}
	for _, v := range ran {
		base[v] = v
	}
	out := []selection{}
	var rec func(i int, m core.Subst)
	rec = func(i int, m core.Subst) {
		if i == len(rest) {
			out = append(out, selection{m: m.Clone()})
			return
		}
		// Unmapped.
		rec(i+1, m)
		// Mapped to each range element.
		for _, t := range ran {
			m[rest[i]] = t
			rec(i+1, m)
			delete(m, rest[i])
		}
	}
	rec(0, base)
	return out
}

// covered returns cov(σ, µ) (Definition 8): the body atoms whose argument
// variables all lie in dom(µ).
func covered(r *core.Rule, sel selection) []core.Atom {
	d := sel.dom()
	var out []core.Atom
	for _, a := range r.PositiveBody() {
		if d.ContainsAll(a.Vars()) {
			out = append(out, a)
		}
	}
	return out
}

// keepVars returns keep(σ, µ) (Definition 9): every µ(x) with x ∈ dom(µ)
// such that x occurs (as an argument) in body(σ)\cov(σ,µ) — plus, for
// rc-rewritings, in head(σ). The head clause is needed for rc because the
// head moves to the σ′′ side away from the covered atoms; for
// rnc-rewritings the head stays with the covered atoms, which re-bind its
// variables (the paper's Examples 5 and 6 compute keep this way: x2 of
// Example 5 occurs in the head yet is not kept).
func keepVars(r *core.Rule, sel selection, cov []core.Atom, kind string) core.TermSet {
	covSet := make(map[string]bool, len(cov))
	for _, a := range cov {
		covSet[a.String()] = true
	}
	occurs := make(core.TermSet)
	for _, a := range r.PositiveBody() {
		if covSet[a.String()] {
			continue
		}
		occurs.AddAll(a.AllVars())
	}
	if kind == "rc" {
		for _, h := range r.Head {
			occurs.AddAll(h.AllVars())
		}
	}
	out := make(core.TermSet)
	for x := range sel.dom() {
		if occurs.Has(x) {
			out.Add(sel.m.Apply(x))
		}
	}
	return out
}
