package rewrite

import (
	"context"
	"errors"
	"testing"

	"guardedrules/internal/budget"
	"guardedrules/internal/normalize"
	"guardedrules/internal/parser"
)

func TestBudgetRuleLimitReturnsPartialExpansion(t *testing.T) {
	th := normalize.Normalize(parser.MustParseTheory(sigmaP))
	ex, stats, err := Expand(th, Options{Budget: &budget.T{MaxRules: 10}})
	if !errors.Is(err, budget.ErrRuleLimit) {
		t.Fatalf("err = %v, want ErrRuleLimit", err)
	}
	if ex == nil || len(ex.Rules) == 0 || len(ex.Rules) > 10 {
		t.Fatalf("partial expansion must hold the rules emitted so far, got %v", ex)
	}
	if stats == nil || stats.ExpansionRules != len(ex.Rules) {
		t.Fatalf("stats must describe the partial expansion, got %+v", stats)
	}
}

func TestLegacyMaxRulesWrapsSentinel(t *testing.T) {
	th := normalize.Normalize(parser.MustParseTheory(sigmaP))
	_, _, err := Expand(th, Options{MaxRules: 5})
	if !errors.Is(err, budget.ErrRuleLimit) {
		t.Fatalf("legacy cap err = %v, want ErrRuleLimit wrap", err)
	}
}

// Rewrite post-processes the partial expansion on budget exhaustion: the
// returned theory is still nearly guarded over the partial rule set.
func TestRewritePropagatesPartial(t *testing.T) {
	th := normalize.Normalize(parser.MustParseTheory(sigmaP))
	rew, _, err := Rewrite(th, Options{Budget: &budget.T{MaxRules: 10}})
	if !errors.Is(err, budget.ErrRuleLimit) {
		t.Fatalf("err = %v, want ErrRuleLimit", err)
	}
	if rew == nil || len(rew.Rules) == 0 {
		t.Fatal("Rewrite must return the post-processed partial expansion")
	}
}

// Fault injection: cancel the expansion at every worklist checkpoint.
func TestFailAtEveryCheckpoint(t *testing.T) {
	th := normalize.Normalize(parser.MustParseTheory(sigmaP))
	ref, _, err := Expand(th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; ; n++ {
		if n > 100_000 {
			t.Fatal("fault injection never ran to completion")
		}
		ex, _, err := Expand(th, Options{Budget: budget.FailAt(n)})
		if err == nil {
			if len(ex.Rules) != len(ref.Rules) {
				t.Fatalf("n=%d: governed run has %d rules, want %d", n, len(ex.Rules), len(ref.Rules))
			}
			break
		}
		if !errors.Is(err, budget.ErrCanceled) {
			t.Fatalf("n=%d: err = %v, want ErrCanceled", n, err)
		}
		if ex == nil {
			t.Fatalf("n=%d: canceled expansion must return partial theory", n)
		}
	}
}

func TestContextCancelStopsExpansion(t *testing.T) {
	th := normalize.Normalize(parser.MustParseTheory(sigmaP))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex, _, err := Expand(th, Options{Budget: &budget.T{Ctx: ctx}})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ex == nil {
		t.Fatal("canceled expansion must return the partial theory")
	}
}
