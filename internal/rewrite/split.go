package rewrite

import (
	"fmt"

	"guardedrules/internal/classify"
	"guardedrules/internal/core"
)

// split is the common shape of an rc- or rnc-rewriting of a non-guarded
// Datalog rule σ w.r.t. a selection µ: the body is partitioned into a
// removed part (the body of σ′, deriving the fresh atom H) and a kept part
// (the body of σ′′, deriving µ(head(σ))).
type split struct {
	kind    string      // "rc" or "rnc"
	removed []core.Atom // µ-image of the atoms pulled into σ′
	kept    []core.Atom // µ-image of the atoms kept in σ′′
	head    core.Atom   // µ(head(σ))
	hAtom   core.Atom   // the fresh linking atom H(~y) with its annotation
}

// buildSplit assembles the split for a rule, selection and kind; it
// returns ok=false when the definitions' side conditions fail, and an
// error for a kind other than "rc"/"rnc" (an internal invariant violation,
// reported instead of panicking so engines stay recoverable). Following
// the proof of Theorem 1, an rc-rewriting is generated when the fixed
// frontier guard fg(σ) is outside the covered part (its image lies outside
// the tree node) and an rnc-rewriting when it is covered.
func buildSplit(r *core.Rule, sel selection, kind string) (split, bool, error) {
	cov := covered(r, sel)
	// Conditions (b) of Definitions 10 and 11 need a projectable variable
	// on the removed side, so that side must be non-empty.
	if kind == "rc" && len(cov) == 0 {
		return split{}, false, nil
	}
	if kind == "rnc" && len(cov) == len(r.Body) {
		return split{}, false, nil
	}
	if fg, ok := classify.FrontierGuard(r); ok && len(fg.Args) > 0 {
		fgCovered := false
		for _, a := range cov {
			if a.Equal(fg) {
				fgCovered = true
				break
			}
		}
		if kind == "rc" && fgCovered {
			return split{}, false, nil
		}
		if kind == "rnc" && !fgCovered {
			return split{}, false, nil
		}
	}
	covSet := make(map[string]bool, len(cov))
	for _, a := range cov {
		covSet[a.String()] = true
	}
	var rest []core.Atom
	for _, a := range r.PositiveBody() {
		if !covSet[a.String()] {
			rest = append(rest, a)
		}
	}
	keep := keepVars(r, sel, cov, kind)
	mCov := sel.apply(cov)
	mRest := sel.apply(rest)
	head := sel.m.ApplyAtom(r.Head[0])

	var removed, kept []core.Atom
	switch kind {
	case "rc":
		removed, kept = mCov, mRest
		// Condition (b) of Definition 10: µ(cov) must have a variable not
		// kept (a projected variable).
		if !hasProjectedVar(mCov, keep) {
			return split{}, false, nil
		}
	case "rnc":
		removed, kept = mRest, mCov
		// Condition (b) of Definition 11 is enforced during guard
		// enumeration (the guard must expose a projected variable of
		// µ(body\cov)); here we only require such a variable to exist.
		if !hasProjectedVar(mRest, keep) {
			return split{}, false, nil
		}
	default:
		return split{}, false, fmt.Errorf("rewrite: unknown split kind %q", kind)
	}

	h := core.Atom{
		Relation: "\x00H", // named canonically by canonSplit
		Args:     keep.Sorted(),
	}
	// H carries the head annotation plus the annotation-level linkage: the
	// variables occurring on both sides of the split that are not already
	// arguments of H ride in its annotation. (The paper's "H has the
	// annotation of head(σ)" is the special case where annotations only
	// flow through the head.)
	ann := make(core.TermSet)
	for _, a := range r.Head {
		ann.AddAll(sel.m.ApplyAtom(a).AnnVars())
	}
	removedVars := core.AllVarsOf(removed)
	keptVars := core.AllVarsOf(kept)
	keptVars.AddAll(head.AllVars())
	for v := range removedVars.Intersect(keptVars) {
		if !keep.Has(v) {
			ann.Add(v)
		}
	}
	// Annotation variables must be bound on the removed side (the body of
	// σ′); head-annotation variables bound only on the kept side are
	// dropped from H (σ′′ binds them itself).
	hAnn := make(core.TermSet)
	for v := range ann {
		if removedVars.Has(v) {
			hAnn.Add(v)
		}
	}
	if len(hAnn) > 0 {
		h.Annotation = hAnn.Sorted()
	}
	return split{kind: kind, removed: removed, kept: kept, head: head, hAtom: h}, true, nil
}

// hasProjectedVar reports whether the atoms contain an argument variable
// outside keep.
func hasProjectedVar(atoms []core.Atom, keep core.TermSet) bool {
	for v := range core.VarsOf(atoms) {
		if !keep.Has(v) {
			return true
		}
	}
	return false
}

// canonSplit canonicalizes a split: the returned key is identical exactly
// for isomorphic splits, and the H atom's arguments and annotation are
// reordered into a deterministic, isomorphism-respecting order. Each split
// is processed once globally, and its σ′/σ′′ pair shares one H instance,
// so the order only needs to be consistent within the pair.
func canonSplit(s split) (string, split) {
	var tagged []core.Atom
	for _, a := range s.removed {
		b := a.Clone()
		b.Relation = "RM\x60" + b.Relation
		tagged = append(tagged, b)
	}
	for _, a := range s.kept {
		b := a.Clone()
		b.Relation = "KP\x60" + b.Relation
		tagged = append(tagged, b)
	}
	hd := s.head.Clone()
	hd.Relation = "HD\x60" + hd.Relation
	tagged = append(tagged, hd)
	for _, v := range s.hAtom.Args {
		tagged = append(tagged, core.NewAtom("KV\x60", v))
	}
	for _, v := range s.hAtom.Annotation {
		tagged = append(tagged, core.NewAtom("AV\x60", v))
	}
	key, numberings := core.CanonicalAtomSet(tagged)
	key = s.kind + "|" + key

	out := s
	h := s.hAtom.Clone()
	h.Args = core.CanonicalVarOrder(h.Args, numberings)
	if len(h.Annotation) > 0 {
		h.Annotation = core.CanonicalVarOrder(h.Annotation, numberings)
	}
	out.hAtom = h
	return key, out
}

// guardTuples enumerates the argument tuples ~x of a guard atom of the
// given arity: each position holds a variable from need ∪ optional or a
// fresh padding variable; every variable of need must occur, and when
// requireExtra is non-empty at least one position must hold a variable
// from requireExtra.
func guardTuples(arity int, need, optional, requireExtra []core.Term, avoid core.TermSet) [][]core.Term {
	if len(need) > arity {
		return nil
	}
	choices := append(append([]core.Term(nil), need...), optional...)
	var out [][]core.Term
	tuple := make([]core.Term, arity)
	var rec func(pos, pads int)
	rec = func(pos, pads int) {
		if pos == arity {
			used := core.NewTermSet(tuple...)
			for _, v := range need {
				if !used.Has(v) {
					return
				}
			}
			if len(requireExtra) > 0 {
				found := false
				for _, v := range requireExtra {
					if used.Has(v) {
						found = true
						break
					}
				}
				if !found {
					return
				}
			}
			out = append(out, append([]core.Term(nil), tuple...))
			return
		}
		for _, v := range choices {
			tuple[pos] = v
			rec(pos+1, pads)
		}
		// A fresh padding variable, distinct per position.
		tuple[pos] = core.FreshVar(fmt.Sprintf("w%d_", pos), avoid)
		rec(pos+1, pads+1)
	}
	rec(0, 0)
	return out
}
