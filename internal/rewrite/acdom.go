package rewrite

import (
	"guardedrules/internal/core"
)

// starSuffix is appended to relation names by Axiomatize.
const starSuffix = "_star"

// Star returns the starred name of a relation (R ↦ R*).
func Star(rel string) string { return rel + starSuffix }

// Axiomatize computes Σ* of Definition 15 / Proposition 5: the built-in
// relation ACDom is eliminated by moving the theory to starred relations
// and axiomatizing ACDom* from the input relations. For a query (Σ, Q),
// (Σ*, Q*) returns the same answers over every database, with Σ* free of
// the built-in ACDom.
func Axiomatize(th *core.Theory) *core.Theory {
	out := core.NewTheory()
	star := func(a core.Atom) core.Atom {
		b := a.Clone()
		b.Relation = Star(a.Relation)
		return b
	}
	for _, r := range th.Rules {
		nr := r.Clone()
		for i := range nr.Body {
			nr.Body[i].Atom = star(nr.Body[i].Atom)
		}
		for i := range nr.Head {
			nr.Head[i] = star(nr.Head[i])
		}
		out.Add(nr)
	}
	// (a) copy rules and (b) ACDom* population, for every relation of Σ
	// other than the built-in ACDom (which has no stored extension).
	acdomStar := Star(core.ACDom)
	for _, rk := range th.Relations() {
		if rk.Name == core.ACDom {
			continue
		}
		args := make([]core.Term, rk.Arity)
		for i := range args {
			args[i] = core.Var(varName(i))
		}
		var ann []core.Term
		for i := 0; i < rk.AnnArity; i++ {
			ann = append(ann, core.Var(varName(rk.Arity+i)))
		}
		src := core.Atom{Relation: rk.Name, Args: args, Annotation: ann}
		dst := core.Atom{Relation: Star(rk.Name), Args: args, Annotation: ann}
		out.Add(core.NewRule([]core.Atom{src}, nil, dst))
		for i := 0; i < rk.Arity; i++ {
			out.Add(core.NewRule([]core.Atom{src}, nil, core.NewAtom(acdomStar, args[i])))
		}
		// Annotation positions hold active constants as well.
		for i := 0; i < rk.AnnArity; i++ {
			out.Add(core.NewRule([]core.Atom{src}, nil, core.NewAtom(acdomStar, ann[i])))
		}
	}
	// (c) constants of Σ.
	for _, c := range th.Constants().Sorted() {
		out.Add(core.Fact(core.NewAtom(acdomStar, c)))
	}
	return core.StampGenerated(out, "acdom-axiomatization")
}

func varName(i int) string {
	return "x" + string(rune('0'+i%10)) + suffixFor(i/10)
}

func suffixFor(i int) string {
	if i == 0 {
		return ""
	}
	return string(rune('a' + (i-1)%26))
}
