package rewrite

import (
	"fmt"

	"guardedrules/internal/budget"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/normalize"
)

// Options bounds the expansion, which is worst-case exponential
// (Section 5.1).
type Options struct {
	// MaxRules caps the number of distinct rules in ex(Σ). 0 means 100,000.
	MaxRules int
	// MaxRuleVars rejects input rules with more universal variables than
	// this (the selection space is exponential in it). 0 means 9.
	MaxRuleVars int
	// Budget, when non-nil, governs the run: its context/deadline cancels
	// the expansion between worklist items, its MaxRules overrides the cap
	// above (the single-exponential bound of Theorem 1), and exhaustion
	// returns the rules emitted so far alongside a typed *budget.Error
	// wrapping ErrRuleLimit, ErrCanceled or ErrDeadline.
	Budget *budget.T
}

func (o Options) maxRules() int {
	if o.MaxRules == 0 {
		return 100_000
	}
	return o.MaxRules
}

func (o Options) maxRuleVars() int {
	if o.MaxRuleVars == 0 {
		return 9
	}
	return o.MaxRuleVars
}

// Stats reports the work of an expansion run.
type Stats struct {
	InputRules     int
	ExpansionRules int // rules in ex(Σ)
	Selections     int // selections enumerated
	Splits         int // distinct splits (rc/rnc partitions)
	GuardVariants  int // guard instantiations generated
	Passthrough    int // safe Datalog rules left untouched (Definition 14)
}

// expander carries the expansion state.
type expander struct {
	opts     Options
	origRels []core.RelKey // relations of the input Σ (guards come from these)
	k        int           // maximal relation arity of Σ
	byKey    map[string]*core.Rule
	rules    []*core.Rule
	work     []*core.Rule
	splitH   map[string]string // canonical split key → H relation name
	freshN   int
	maxRules int
	tk       *budget.Tracker
	stats    Stats
}

// Expand computes ex(Σ) (Definition 12) for a normal theory whose
// frontier-guarded part drives the rewriting; rules that are neither
// frontier-guarded nor guarded must be safe Datalog rules
// (nearly frontier-guarded input, Definition 14) and pass through.
// On budget exhaustion (errors.Is against the budget sentinels) the
// returned theory holds the rules emitted so far; input-validation errors
// return a nil theory as before.
func Expand(th *core.Theory, opts Options) (*core.Theory, *Stats, error) {
	if !normalize.IsNormal(th) {
		return nil, nil, fmt.Errorf("rewrite: theory is not normal; call normalize.Normalize first")
	}
	tk := budget.Start(opts.Budget)
	defer tk.Stop()
	ap := classify.AffectedPositions(th)
	e := &expander{
		opts:     opts,
		origRels: th.Relations(),
		k:        th.MaxArity(),
		byKey:    make(map[string]*core.Rule),
		splitH:   make(map[string]string),
		maxRules: budget.Cap(opts.Budget, func(b *budget.T) int { return b.MaxRules }, opts.maxRules()),
		tk:       tk,
	}
	// finish attaches the rules emitted so far — the partial ex(Σ) on a
	// budget error, the complete expansion on nil.
	finish := func(err error) (*core.Theory, *Stats, error) {
		e.stats.ExpansionRules = len(e.rules)
		out := core.NewTheory(e.rules...)
		return core.StampGenerated(out, "fg-expansion"), &e.stats, err
	}
	e.stats.InputRules = len(th.Rules)
	for _, r := range th.Rules {
		if r.HasNegation() {
			return nil, nil, fmt.Errorf("rewrite: rule %s has negation", r.Label)
		}
		fg := classify.IsFrontierGuarded(r)
		if !fg {
			if len(classify.Unsafe(r, ap)) > 0 || len(r.Exist) > 0 {
				return nil, nil, fmt.Errorf("rewrite: rule %s is neither frontier-guarded nor safe Datalog (theory is not nearly frontier-guarded)", r.Label)
			}
			// Definition 14: σ ∈ Σd needs no rewriting.
			e.stats.Passthrough++
		}
		if _, err := e.add(r, fg); err != nil {
			return finishOrNil(finish, err)
		}
	}
	for _, br := range bagRules(e.origRels, e.k) {
		if _, err := e.add(br, false); err != nil {
			return finishOrNil(finish, err)
		}
	}
	for len(e.work) > 0 {
		// Worklist checkpoint: cancellation and deadline are observed
		// between rules; the expansion so far stays attached.
		if err := tk.Check(); err != nil {
			return finish(fmt.Errorf("rewrite: %w", err))
		}
		r := e.work[len(e.work)-1]
		e.work = e.work[:len(e.work)-1]
		if err := e.expandRule(r); err != nil {
			return finishOrNil(finish, err)
		}
	}
	return finish(nil)
}

// finishOrNil returns the partial expansion for governed exhaustion and a
// bare error otherwise (input-validation failures have no useful partial).
func finishOrNil(finish func(error) (*core.Theory, *Stats, error), err error) (*core.Theory, *Stats, error) {
	if budget.IsBudget(err) {
		return finish(err)
	}
	return nil, nil, err
}

// add inserts a rule into the expansion (deduplicated up to renaming);
// eligible non-guarded Datalog frontier-guarded rules are enqueued for
// further rewriting when enqueue is true.
func (e *expander) add(r *core.Rule, enqueue bool) (bool, error) {
	k := core.CanonicalKey(r)
	if _, ok := e.byKey[k]; ok {
		return false, nil
	}
	if len(e.rules) >= e.maxRules {
		return false, fmt.Errorf("rewrite: expansion exceeded %d rules: %w",
			e.maxRules, e.tk.Exhausted(budget.ErrRuleLimit))
	}
	e.byKey[k] = r
	e.rules = append(e.rules, r)
	e.tk.AddRules(1)
	if enqueue && r.IsDatalog() && !classify.IsGuarded(r) && classify.IsFrontierGuarded(r) {
		e.work = append(e.work, r)
	}
	return true, nil
}

// measure is the paper's progress measure: the number of universal
// variables not occurring in the best frontier guard.
func measure(r *core.Rule) int {
	uv := r.UVars()
	fv := r.FVars()
	best := len(uv) + 1
	for _, a := range r.PositiveBody() {
		av := a.Vars()
		if !av.ContainsAll(fv) {
			continue
		}
		outside := 0
		for v := range uv {
			if !av.Has(v) {
				outside++
			}
		}
		if outside < best {
			best = outside
		}
	}
	return best
}

// expandRule applies every rc- and rnc-rewriting of the non-guarded
// Datalog rule σ (Definition 12).
func (e *expander) expandRule(r *core.Rule) error {
	if len(r.UVars()) > e.opts.maxRuleVars() {
		return fmt.Errorf("rewrite: rule %s has more than %d variables", r.Label, e.opts.maxRuleVars())
	}
	parentMeasure := measure(r)
	sels := selections(r, e.k)
	e.stats.Selections += len(sels)
	for _, sel := range sels {
		for _, kind := range []string{"rc", "rnc"} {
			sp, ok, err := buildSplit(r, sel, kind)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			key, csp := canonSplit(sp)
			// Each split is processed once globally: a later isomorphic
			// split would emit exactly the same pair up to renaming.
			if _, done := e.splitH[key]; done {
				continue
			}
			e.freshN++
			name := fmt.Sprintf("Aux_%d", e.freshN)
			e.splitH[key] = name
			csp.hAtom.Relation = name
			e.stats.Splits++
			if kind == "rc" {
				err = e.emitRC(r, csp, parentMeasure)
			} else {
				err = e.emitRNC(r, csp, parentMeasure)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// emitRC adds the rc-rewriting pair (Definition 10): the guarded rule
// σ′ = Bag(~x) ∧ µ(cov) → H(~y) and the rule
// σ′′ = H(~y) ∧ µ(body\cov) → µ(head). The bag guard Bag(~x) over all
// variables of σ′ plays the role of the paper's arbitrary guard relation
// R(~x) from Σ: a bag fact witnesses that the variables' images co-occur
// in a single atom of the chase (see bagRules).
func (e *expander) emitRC(r *core.Rule, sp split, parentMeasure int) error {
	need := core.VarsOf(sp.removed)
	need.AddAll(core.NewTermSet(sp.hAtom.Args...))
	guard, ok := e.bagAtom(need)
	if !ok {
		return nil
	}
	e.stats.GuardVariants++
	body := append([]core.Atom{guard}, sp.removed...)
	sigma1 := core.NewRule(body, nil, sp.hAtom)
	sigma1.Label = r.Label + "_rc1"
	if _, err := e.add(sigma1, false); err != nil {
		return err
	}
	body2 := append([]core.Atom{sp.hAtom}, sp.kept...)
	sigma2 := core.NewRule(body2, nil, sp.head)
	sigma2.Label = r.Label + "_rc2"
	enqueue := measure(sigma2) < parentMeasure
	_, err := e.add(sigma2, enqueue)
	return err
}

// emitRNC adds the rnc-rewriting pair (Definition 11): the
// frontier-guarded rule σ′ = Bag(~y, z) ∧ µ(body\cov) → H(~y) for every
// projected variable z of µ(body\cov) (condition (b)), and the guarded
// rule σ′′ = Bag(vars(σ′′)) ∧ H(~y) ∧ µ(cov) → µ(head).
func (e *expander) emitRNC(r *core.Rule, sp split, parentMeasure int) error {
	keep := core.NewTermSet(sp.hAtom.Args...)
	removedVars := core.VarsOf(sp.removed)
	// When µ(body\cov) already frontier-guards ~y, σ′ needs no additional
	// guard atom (the paper's Example 6); the guard-free rule subsumes
	// every guarded variant.
	frontierGuarded := false
	for _, a := range sp.removed {
		if a.Vars().ContainsAll(keep) {
			frontierGuarded = true
			break
		}
	}
	if frontierGuarded {
		sigma1 := core.NewRule(append([]core.Atom(nil), sp.removed...), nil, sp.hAtom)
		sigma1.Label = r.Label + "_rnc1"
		enqueue := measure(sigma1) < parentMeasure
		if _, err := e.add(sigma1, enqueue); err != nil {
			return err
		}
	} else {
		for _, z := range removedVars.Sorted() {
			if keep.Has(z) {
				continue
			}
			need := make(core.TermSet)
			need.AddAll(keep)
			need.Add(z)
			guard, ok := e.bagAtom(need)
			if !ok {
				continue
			}
			e.stats.GuardVariants++
			body := append([]core.Atom{guard}, sp.removed...)
			sigma1 := core.NewRule(body, nil, sp.hAtom)
			sigma1.Label = r.Label + "_rnc1"
			enqueue := measure(sigma1) < parentMeasure
			if _, err := e.add(sigma1, enqueue); err != nil {
				return err
			}
		}
	}
	// σ′′ needs a guard over every variable of σ′′.
	need := core.NewTermSet(sp.hAtom.Args...)
	need.AddAll(core.VarsOf(sp.kept))
	need.AddAll(sp.head.Vars())
	guard, ok := e.bagAtom(need)
	if !ok {
		return nil
	}
	e.stats.GuardVariants++
	body := append([]core.Atom{guard, sp.hAtom}, sp.kept...)
	sigma2 := core.NewRule(body, nil, sp.head)
	sigma2.Label = r.Label + "_rnc2"
	_, err := e.add(sigma2, false)
	return err
}

// bagAtom returns the guard atom NodeBag_j(~v) for the sorted variable
// set, or ok=false when the set exceeds the maximal relation arity k (no
// guard of Σ could cover it, Definitions 10/11).
func (e *expander) bagAtom(need core.TermSet) (core.Atom, bool) {
	j := len(need)
	if j == 0 || j > e.k {
		return core.Atom{}, j == 0
	}
	return core.NewAtom(bagName(j), need.Sorted()...), true
}

func bagName(j int) string { return fmt.Sprintf("NodeBag_%d", j) }

// bagRules derives the bag relations from every relation of Σ: for each
// R/n and each injective tuple (i1,...,ij) of argument positions,
// R(x1,...,xn) → NodeBag_j(x_i1,...,x_ij). All bag rules are guarded.
func bagRules(rels []core.RelKey, k int) []*core.Rule {
	var out []*core.Rule
	for _, rk := range rels {
		if rk.Name == core.ACDom || rk.Arity == 0 {
			continue
		}
		args := make([]core.Term, rk.Arity)
		for i := range args {
			args[i] = core.Var(fmt.Sprintf("x%d", i+1))
		}
		var ann []core.Term
		for i := 0; i < rk.AnnArity; i++ {
			ann = append(ann, core.Var(fmt.Sprintf("a%d", i+1)))
		}
		src := core.Atom{Relation: rk.Name, Args: args, Annotation: ann}
		maxJ := rk.Arity
		if maxJ > k {
			maxJ = k
		}
		var tuples func(j int, chosen []int)
		tuples = func(j int, chosen []int) {
			if j == 0 {
				head := make([]core.Term, len(chosen))
				for i, c := range chosen {
					head[i] = args[c]
				}
				rl := core.NewRule([]core.Atom{src}, nil, core.NewAtom(bagName(len(chosen)), head...))
				rl.Label = "bag_" + rk.Name
				out = append(out, rl)
				return
			}
			for c := 0; c < rk.Arity; c++ {
				used := false
				for _, prev := range chosen {
					if prev == c {
						used = true
						break
					}
				}
				if !used {
					tuples(j-1, append(chosen, c))
				}
			}
		}
		for j := 1; j <= maxJ; j++ {
			tuples(j, nil)
		}
	}
	return out
}

// Rewrite computes rew(Σ) (Definition 13 / Theorem 1 / Proposition 4):
// the expansion ex(Σ) with ACDom guards added to every non-guarded rule of
// the frontier-guarded part. The result is nearly guarded and preserves
// the answers of every query (Σ, Q). On budget exhaustion the partial
// expansion is post-processed the same way and returned alongside the
// typed error.
func Rewrite(th *core.Theory, opts Options) (*core.Theory, *Stats, error) {
	ap := classify.AffectedPositions(th)
	passthrough := make(map[*core.Rule]bool)
	for _, r := range th.Rules {
		if !classify.IsFrontierGuarded(r) && len(classify.Unsafe(r, ap)) == 0 && len(r.Exist) == 0 {
			passthrough[r] = true
		}
	}
	ex, stats, err := Expand(th, opts)
	if err != nil && !budget.IsBudget(err) {
		return nil, nil, err
	}
	ptKeys := make(map[string]bool)
	for r := range passthrough {
		ptKeys[core.CanonicalKey(r)] = true
	}
	out := core.NewTheory()
	for _, r := range ex.Rules {
		if classify.IsGuarded(r) || ptKeys[core.CanonicalKey(r)] {
			out.Add(r)
			continue
		}
		r2 := r.Clone()
		for _, x := range r2.UVars().Sorted() {
			r2.Body = append(r2.Body, core.Pos(core.NewAtom(core.ACDom, x)))
		}
		out.Add(r2)
	}
	return core.StampGenerated(out, "nearly-guarded-rewrite"), stats, err
}
