package classify

import (
	"testing"

	"guardedrules/internal/core"
)

func varSet(names ...string) core.TermSet {
	s := make(core.TermSet)
	for _, n := range names {
		s.Add(core.Var(n))
	}
	return s
}

func TestGuardResidueCovered(t *testing.T) {
	// R(x,y,z) covers everything; the residue is empty and the candidate
	// is the first fully covering atom.
	r := core.NewRule(
		[]core.Atom{
			core.NewAtom("S", core.Var("x"), core.Var("y")),
			core.NewAtom("R", core.Var("x"), core.Var("y"), core.Var("z")),
		},
		nil,
		core.NewAtom("H", core.Var("x")),
	)
	guard, residue := GuardResidue(r, varSet("x", "y", "z"))
	if len(residue) != 0 {
		t.Fatalf("residue = %v, want empty", residue)
	}
	if guard.Relation != "R" {
		t.Fatalf("guard = %v, want the R atom", guard)
	}
	if !IsGuarded(r) {
		t.Fatal("rule must be guarded")
	}
}

func TestGuardResiduePicksBestCandidate(t *testing.T) {
	// No atom covers {x,y,z}; S(x,y) covers two of three, T(z) one.
	r := core.NewRule(
		[]core.Atom{
			core.NewAtom("T", core.Var("z")),
			core.NewAtom("S", core.Var("x"), core.Var("y")),
		},
		nil,
		core.NewAtom("H", core.Var("x"), core.Var("z")),
	)
	guard, residue := GuardResidue(r, varSet("x", "y", "z"))
	if guard.Relation != "S" {
		t.Fatalf("guard candidate = %v, want the S atom (largest cover)", guard)
	}
	if len(residue) != 1 || !residue.Has(core.Var("z")) {
		t.Fatalf("residue = %v, want {z}", residue)
	}
	if IsGuarded(r) {
		t.Fatal("rule must not be guarded")
	}
}

func TestGuardResidueTieKeepsBodyOrder(t *testing.T) {
	// Both atoms cover exactly one needed variable; the earliest wins.
	r := core.NewRule(
		[]core.Atom{
			core.NewAtom("A", core.Var("x")),
			core.NewAtom("B", core.Var("y")),
		},
		nil,
		core.NewAtom("H", core.Var("x"), core.Var("y")),
	)
	guard, residue := GuardResidue(r, varSet("x", "y"))
	if guard.Relation != "A" {
		t.Fatalf("guard candidate = %v, want the A atom (first on ties)", guard)
	}
	if len(residue) != 1 || !residue.Has(core.Var("y")) {
		t.Fatalf("residue = %v, want {y}", residue)
	}
}

func TestGuardResidueEdgeCases(t *testing.T) {
	r := core.NewRule(nil, []core.Term{core.Var("y")}, core.NewAtom("H", core.Var("y")))
	if _, residue := GuardResidue(r, nil); len(residue) != 0 {
		t.Fatalf("empty need: residue = %v, want empty", residue)
	}
	// Non-empty need but no positive body atom: the residue is all of
	// need.
	neg := &core.Rule{
		Body: []core.Literal{core.Neg(core.NewAtom("S", core.Var("x")))},
		Head: []core.Atom{core.NewAtom("H", core.Var("x"))},
	}
	_, residue := GuardResidue(neg, varSet("x"))
	if len(residue) != 1 || !residue.Has(core.Var("x")) {
		t.Fatalf("no positive body: residue = %v, want {x}", residue)
	}
}

// GuardResidue must agree with the membership predicates on every rule of
// a mixed theory: empty residue iff guarded (and likewise for the
// frontier).
func TestGuardResidueAgreesWithMembership(t *testing.T) {
	th := core.NewTheory(
		core.NewRule([]core.Atom{core.NewAtom("R", core.Var("x"), core.Var("y"))}, nil,
			core.NewAtom("P", core.Var("x"))),
		core.NewRule([]core.Atom{
			core.NewAtom("R", core.Var("x"), core.Var("y")),
			core.NewAtom("R", core.Var("y"), core.Var("z")),
		}, nil, core.NewAtom("R", core.Var("x"), core.Var("z"))),
		core.NewRule([]core.Atom{core.NewAtom("P", core.Var("x"))}, []core.Term{core.Var("w")},
			core.NewAtom("R", core.Var("x"), core.Var("w"))),
	)
	for _, r := range th.Rules {
		_, ures := GuardResidue(r, r.UVars())
		if (len(ures) == 0) != IsGuarded(r) {
			t.Errorf("rule %v: uvars residue %v disagrees with IsGuarded=%v", r, ures, IsGuarded(r))
		}
		_, fres := GuardResidue(r, r.FVars())
		if (len(fres) == 0) != IsFrontierGuarded(r) {
			t.Errorf("rule %v: fvars residue %v disagrees with IsFrontierGuarded=%v", r, fres, IsFrontierGuarded(r))
		}
	}
}
