package classify

import (
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

// sigmaP is the running example Σp of Example 1 plus the query rule σ4.
const sigmaP = `
Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
Keywords(X,K1,K2) -> hasTopic(X,K1).
hasTopic(X,Z), hasAuthor(X,U), hasAuthor(Y,U),
  hasTopic(Y,Z2), Scientific(Z2), citedIn(Y,X) -> Scientific(Z).
hasAuthor(X,Y), hasTopic(X,Z), Scientific(Z) -> Q(Y).
`

func TestAffectedPositionsRunningExample(t *testing.T) {
	th := parser.MustParseTheory(sigmaP)
	ap := AffectedPositions(th)
	want := []Position{
		{core.RelKey{Name: "Keywords", Arity: 3}, 1},
		{core.RelKey{Name: "Keywords", Arity: 3}, 2},
		{core.RelKey{Name: "hasTopic", Arity: 2}, 1},
		{core.RelKey{Name: "Scientific", Arity: 1}, 0},
	}
	if len(ap) != len(want) {
		t.Fatalf("ap size: got %d (%v), want %d", len(ap), ap, len(want))
	}
	for _, p := range want {
		if !ap[p] {
			t.Errorf("position %v must be affected", p)
		}
	}
}

func TestClassifyRunningExample(t *testing.T) {
	th := parser.MustParseTheory(sigmaP)
	rep := Classify(th)
	if rep.Member[Datalog] {
		t.Error("Σp has existential rules")
	}
	if rep.Member[Guarded] {
		t.Error("σ3 is not guarded")
	}
	if !rep.Member[FrontierGuarded] {
		t.Errorf("Σp is frontier-guarded (offender %v)", rep.Offender[FrontierGuarded])
	}
	if rep.Member[WeaklyGuarded] {
		t.Error("σ3 has unsafe variables Z, Z2 in no single atom; not weakly guarded")
	}
	if !rep.Member[WeaklyFrontierGuarded] {
		t.Errorf("fg ⊆ wfg must hold (offender %v)", rep.Offender[WeaklyFrontierGuarded])
	}
	if !rep.Member[NearlyFrontierGuarded] {
		t.Error("fg ⊆ nfg must hold")
	}
	if rep.Member[NearlyGuarded] {
		t.Error("σ3 is neither guarded nor over safe variables only")
	}
}

func TestClassifyTransitiveClosure(t *testing.T) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	rep := Classify(th)
	for _, f := range []Fragment{Datalog, NearlyGuarded, NearlyFrontierGuarded, WeaklyGuarded, WeaklyFrontierGuarded} {
		if !rep.Member[f] {
			t.Errorf("transitive closure must be %v", f)
		}
	}
	if rep.Member[Guarded] {
		t.Error("the transitivity rule is not guarded")
	}
	// The transitivity rule is not frontier-guarded either: frontier {X,Z}
	// shares no atom.
	if rep.Member[FrontierGuarded] {
		t.Error("the transitivity rule is not frontier-guarded")
	}
}

func TestClassifyGuarded(t *testing.T) {
	// Example 7's theory is fully guarded.
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> S(Y,Y).
		S(X,Y) -> exists Z. T(X,Y,Z).
		T(X,X,Y) -> B(X).
		C(X), R(X,Y), B(Y) -> D(X).
	`)
	rep := Classify(th)
	if !rep.Member[Guarded] {
		t.Errorf("Example 7 theory must be guarded (offender %v)", rep.Offender[Guarded])
	}
	for _, f := range []Fragment{FrontierGuarded, NearlyGuarded, NearlyFrontierGuarded, WeaklyGuarded, WeaklyFrontierGuarded} {
		if !rep.Member[f] {
			t.Errorf("guarded theory must be in %v", f)
		}
	}
}

func TestSyntacticInclusions(t *testing.T) {
	// The '*' arrows of Figure 1 on a mixed workload: every guarded theory
	// is frontier-guarded, nearly guarded, weakly guarded, etc.
	sources := []string{
		sigmaP,
		`E(X,Y) -> T(X,Y). T(X,Y), T(Y,Z) -> T(X,Z).`,
		`A(X) -> exists Y. R(X,Y). R(X,Y), B(Y) -> C(X).`,
		`R(X,Y), S(Y,Z) -> exists W. R(Z,W).`,
	}
	for _, src := range sources {
		rep := Classify(parser.MustParseTheory(src))
		m := rep.Member
		if m[Datalog] && !(m[NearlyGuarded] && m[NearlyFrontierGuarded] && m[WeaklyGuarded] && m[WeaklyFrontierGuarded]) {
			t.Errorf("datalog must imply nearly/weakly fragments: %q", src)
		}
		if m[Guarded] && !(m[FrontierGuarded] && m[NearlyGuarded] && m[WeaklyGuarded]) {
			t.Errorf("guarded inclusions violated: %q", src)
		}
		if m[FrontierGuarded] && !(m[NearlyFrontierGuarded] && m[WeaklyFrontierGuarded]) {
			t.Errorf("frontier-guarded inclusions violated: %q", src)
		}
		if m[NearlyGuarded] && !m[NearlyFrontierGuarded] {
			t.Errorf("ng ⊆ nfg violated: %q", src)
		}
		if m[WeaklyGuarded] && !m[WeaklyFrontierGuarded] {
			t.Errorf("wg ⊆ wfg violated: %q", src)
		}
	}
}

func TestWeaklyGuardedButNotGuarded(t *testing.T) {
	// A weakly guarded, non-guarded theory: the unguarded rule only joins
	// safe variables plus one unsafe variable covered by a guard.
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), B(Z) -> P(Y,Z).
	`)
	rep := Classify(th)
	if !rep.Member[WeaklyGuarded] {
		t.Errorf("theory must be weakly guarded (offender %v)", rep.Offender[WeaklyGuarded])
	}
	if rep.Member[Guarded] {
		t.Error("second rule is not guarded")
	}
	if rep.Member[NearlyGuarded] {
		t.Error("second rule has unsafe variable Y and is not guarded")
	}
}

func TestUnsafeVariables(t *testing.T) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), R(Z,Y) -> P(X,Z).
	`)
	ap := AffectedPositions(th)
	r := th.Rules[1]
	u := Unsafe(r, ap)
	if len(u) != 1 || !u.Has(core.Var("Y")) {
		t.Errorf("unsafe vars: %v (want {Y})", u)
	}
}

func TestGuardAndFrontierGuard(t *testing.T) {
	th := parser.MustParseTheory(`R(X,Y), S(Y) -> exists Z. P(Y,Z).`)
	r := th.Rules[0]
	g, ok := Guard(r)
	if !ok || g.Relation != "R" {
		t.Errorf("guard: %v %v", g, ok)
	}
	fgAtom, ok := FrontierGuard(r)
	if !ok || !(fgAtom.Relation == "R" || fgAtom.Relation == "S") {
		t.Errorf("frontier guard: %v %v", fgAtom, ok)
	}
	// Fact rules are trivially guarded.
	fact := core.Fact(core.NewAtom("R", core.Const("c")))
	if !IsGuarded(fact) || !IsFrontierGuarded(fact) {
		t.Error("fact rules must count as guarded")
	}
}

func TestProperReorder(t *testing.T) {
	// R's affected position is its second; a proper theory must move it
	// first.
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> B(X).
	`)
	if IsProper(th) {
		t.Skip("already proper; test needs an improper theory")
	}
	ro := ProperReorder(th)
	proper := ro.Theory(th)
	if !IsProper(proper) {
		t.Fatalf("reordered theory is not proper:\n%v", proper)
	}
	// Round trip on atoms and databases.
	a := core.NewAtom("R", core.Const("c"), core.Const("d"))
	if got := ro.Undo(ro.Atom(a)); !got.Equal(a) {
		t.Errorf("Undo(Atom(a)) = %v, want %v", got, a)
	}
	d := database.FromAtoms(parser.MustParseFacts(`R(c,d). A(c).`))
	back := ro.UndoDatabase(ro.Database(d))
	if ok, diff := database.SameGroundAtoms(d, back); !ok {
		t.Errorf("database round trip: %s", diff)
	}
	// The reordered theory classifies the same.
	if Classify(th).Member[WeaklyGuarded] != Classify(proper).Member[WeaklyGuarded] {
		t.Error("reordering must preserve weak guardedness")
	}
}

func TestIsProperDetectsBadOrder(t *testing.T) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> B(X).
	`)
	// (R,2) is affected, (R,1) is not: improper.
	if IsProper(th) {
		t.Error("theory with affected position after non-affected must be improper")
	}
	th2 := parser.MustParseTheory(`
		A(X) -> exists Y. R(Y,X).
		R(Y,X) -> B(X).
	`)
	if !IsProper(th2) {
		t.Error("theory with affected positions first must be proper")
	}
}

func TestFragmentString(t *testing.T) {
	if WeaklyFrontierGuarded.String() != "weakly frontier-guarded" {
		t.Error("Fragment.String wrong")
	}
	rep := Classify(parser.MustParseTheory(`E(X,Y) -> T(X,Y).`))
	fs := rep.Fragments()
	if len(fs) == 0 || fs[0] != Datalog {
		t.Errorf("Fragments order: %v", fs)
	}
}

func TestStratifiedClassificationIgnoresNegation(t *testing.T) {
	// Section 8: weak guardedness of stratified theories is computed on the
	// theory with negative atoms dropped.
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), not B(Y) -> P(X).
	`)
	rep := Classify(th)
	if !rep.Member[WeaklyGuarded] {
		t.Errorf("negated atoms must not break weak guardedness (offender %v)", rep.Offender[WeaklyGuarded])
	}
}
