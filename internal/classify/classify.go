// Package classify implements the guardedness taxonomy of the paper
// (Definitions 1–3): guarded, frontier-guarded, weakly (frontier-)guarded
// and nearly (frontier-)guarded rules, built on the affected-position
// analysis of Definition 2. It also implements the proper-theory position
// reordering of Definition 16.
//
// For stratified theories (Section 8), all notions are computed on the
// theory obtained by dropping negated body atoms.
package classify

import (
	"fmt"
	"sort"

	"guardedrules/internal/core"
)

// Position is an argument position (R, i) of a relation, 0-based.
// Annotation positions are never affected and are not tracked.
type Position struct {
	Rel   core.RelKey
	Index int
}

func (p Position) String() string { return fmt.Sprintf("(%s,%d)", p.Rel.Name, p.Index+1) }

// PosSet is a set of positions.
type PosSet map[Position]bool

// posOf returns the positions of atoms where the variable x occurs as an
// argument — pos(Γ, x) of Definition 2.
func posOf(atoms []core.Atom, x core.Term) []Position {
	var out []Position
	for _, a := range atoms {
		for i, t := range a.Args {
			if t == x {
				out = append(out, Position{a.Key(), i})
			}
		}
	}
	return out
}

// AffectedPositions computes ap(Σ) (Definition 2): the least set containing
// every head position of an existential variable, closed under propagation
// through rules whose body occurrences of a variable are all affected.
// Negated body atoms are ignored.
func AffectedPositions(th *core.Theory) PosSet {
	ap := make(PosSet)
	// (i) positions of existential variables in heads.
	for _, r := range th.Rules {
		ev := r.EVarSet()
		for _, h := range r.Head {
			for i, t := range h.Args {
				if t.IsVar() && ev.Has(t) {
					ap[Position{h.Key(), i}] = true
				}
			}
		}
	}
	// (ii) propagate until fixpoint.
	for changed := true; changed; {
		changed = false
		for _, r := range th.Rules {
			body := r.PositiveBody()
			for x := range r.UVars() {
				bodyPos := posOf(body, x)
				if len(bodyPos) == 0 {
					continue
				}
				all := true
				for _, p := range bodyPos {
					if !ap[p] {
						all = false
						break
					}
				}
				if !all {
					continue
				}
				for _, p := range posOf(r.Head, x) {
					if !ap[p] {
						ap[p] = true
						changed = true
					}
				}
			}
		}
	}
	return ap
}

// Unsafe returns unsafe(σ, Σ) restricted to the universal variables of σ:
// the variables whose body occurrences are all in affected positions. The
// ap set must come from AffectedPositions of the enclosing theory.
func Unsafe(r *core.Rule, ap PosSet) core.TermSet {
	out := make(core.TermSet)
	body := r.PositiveBody()
	for x := range r.UVars() {
		bodyPos := posOf(body, x)
		if len(bodyPos) == 0 {
			// A variable occurring only in negated atoms cannot be bound to
			// a null (it is grounded by safety); treat as safe.
			continue
		}
		all := true
		for _, p := range bodyPos {
			if !ap[p] {
				all = false
				break
			}
		}
		if all {
			out.Add(x)
		}
	}
	return out
}

// GuardResidue returns the best guard candidate for covering need among
// the positive body atoms of r — the atom whose argument variables cover
// the most variables of need, the earliest in body order on ties — and the
// residue need \ vars(candidate): the variables the candidate fails to
// cover. The residue is empty exactly when r has a body atom guarding all
// of need, and the candidate then is the first such atom, so callers that
// only test guardedness and callers that explain a failure (internal/lint)
// share one coverage computation. With an empty need, or when r has no
// positive body atom, the zero atom is returned; the residue then is need
// itself.
func GuardResidue(r *core.Rule, need core.TermSet) (core.Atom, core.TermSet) {
	if len(need) == 0 {
		return core.Atom{}, nil
	}
	body := r.PositiveBody()
	best, bestCover := -1, -1
	for i, a := range body {
		vars := a.Vars()
		cover := 0
		for v := range need {
			if vars.Has(v) {
				cover++
			}
		}
		if cover > bestCover {
			best, bestCover = i, cover
			if cover == len(need) {
				break
			}
		}
	}
	if best < 0 {
		residue := make(core.TermSet, len(need))
		residue.AddAll(need)
		return core.Atom{}, residue
	}
	return body[best], need.Minus(body[best].Vars())
}

// guardFor returns a positive body atom containing every variable of need,
// or ok=false. When need is empty any rule qualifies (an empty guard).
func guardFor(r *core.Rule, need core.TermSet) (core.Atom, bool) {
	a, residue := GuardResidue(r, need)
	return a, len(residue) == 0
}

// IsGuarded reports whether σ has a body atom containing uvars(σ)
// (Definition 1). Rules without universal variables count as guarded.
func IsGuarded(r *core.Rule) bool {
	_, ok := guardFor(r, r.UVars())
	return ok
}

// Guard returns a guard atom of a guarded rule.
func Guard(r *core.Rule) (core.Atom, bool) { return guardFor(r, r.UVars()) }

// IsFrontierGuarded reports whether σ has a body atom containing fvars(σ)
// (Definition 1).
func IsFrontierGuarded(r *core.Rule) bool {
	_, ok := guardFor(r, r.FVars())
	return ok
}

// FrontierGuard returns fg(σ), an arbitrary but fixed frontier guard: the
// first body atom containing all frontier variables.
func FrontierGuard(r *core.Rule) (core.Atom, bool) { return guardFor(r, r.FVars()) }

// IsWeaklyGuarded reports whether σ has a body atom containing
// uvars(σ) ∩ unsafe(σ,Σ) (Definition 2).
func IsWeaklyGuarded(r *core.Rule, ap PosSet) bool {
	_, ok := guardFor(r, Unsafe(r, ap))
	return ok
}

// IsWeaklyFrontierGuarded reports whether σ has a body atom containing
// fvars(σ) ∩ unsafe(σ,Σ).
func IsWeaklyFrontierGuarded(r *core.Rule, ap PosSet) bool {
	_, ok := guardFor(r, r.FVars().Intersect(Unsafe(r, ap)))
	return ok
}

// IsNearlyGuarded reports whether σ is guarded, or has no unsafe variables
// and no existential variables (Definition 3).
func IsNearlyGuarded(r *core.Rule, ap PosSet) bool {
	if IsGuarded(r) {
		return true
	}
	return len(Unsafe(r, ap)) == 0 && len(r.Exist) == 0
}

// IsNearlyFrontierGuarded reports whether σ is frontier-guarded, or has no
// unsafe variables and no existential variables.
func IsNearlyFrontierGuarded(r *core.Rule, ap PosSet) bool {
	if IsFrontierGuarded(r) {
		return true
	}
	return len(Unsafe(r, ap)) == 0 && len(r.Exist) == 0
}

// Fragment is a rule language of Figure 1.
type Fragment int

const (
	Datalog Fragment = iota
	Guarded
	FrontierGuarded
	NearlyGuarded
	NearlyFrontierGuarded
	WeaklyGuarded
	WeaklyFrontierGuarded
)

func (f Fragment) String() string {
	switch f {
	case Datalog:
		return "datalog"
	case Guarded:
		return "guarded"
	case FrontierGuarded:
		return "frontier-guarded"
	case NearlyGuarded:
		return "nearly guarded"
	case NearlyFrontierGuarded:
		return "nearly frontier-guarded"
	case WeaklyGuarded:
		return "weakly guarded"
	case WeaklyFrontierGuarded:
		return "weakly frontier-guarded"
	default:
		return fmt.Sprintf("Fragment(%d)", int(f))
	}
}

// Report describes the fragments a theory belongs to.
type Report struct {
	AP       PosSet
	Member   map[Fragment]bool
	Offender map[Fragment]*core.Rule // a rule breaking membership, if any
}

// Classify computes fragment membership of the theory.
func Classify(th *core.Theory) *Report {
	ap := AffectedPositions(th)
	rep := &Report{
		AP:       ap,
		Member:   make(map[Fragment]bool),
		Offender: make(map[Fragment]*core.Rule),
	}
	checks := []struct {
		f  Fragment
		ok func(*core.Rule) bool
	}{
		{Datalog, func(r *core.Rule) bool { return r.IsDatalog() }},
		{Guarded, IsGuarded},
		{FrontierGuarded, IsFrontierGuarded},
		{NearlyGuarded, func(r *core.Rule) bool { return IsNearlyGuarded(r, ap) }},
		{NearlyFrontierGuarded, func(r *core.Rule) bool { return IsNearlyFrontierGuarded(r, ap) }},
		{WeaklyGuarded, func(r *core.Rule) bool { return IsWeaklyGuarded(r, ap) }},
		{WeaklyFrontierGuarded, func(r *core.Rule) bool { return IsWeaklyFrontierGuarded(r, ap) }},
	}
	for _, c := range checks {
		rep.Member[c.f] = true
		for _, r := range th.Rules {
			if !c.ok(r) {
				rep.Member[c.f] = false
				rep.Offender[c.f] = r
				break
			}
		}
	}
	return rep
}

// Fragments returns the fragments th belongs to, most restrictive first.
func (rep *Report) Fragments() []Fragment {
	var out []Fragment
	for f := Datalog; f <= WeaklyFrontierGuarded; f++ {
		if rep.Member[f] {
			out = append(out, f)
		}
	}
	return out
}

// SortedAP returns the affected positions in deterministic order.
func (rep *Report) SortedAP() []Position {
	out := make([]Position, 0, len(rep.AP))
	for p := range rep.AP {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel.Name != out[j].Rel.Name {
			return out[i].Rel.Name < out[j].Rel.Name
		}
		return out[i].Index < out[j].Index
	})
	return out
}
