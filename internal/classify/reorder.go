package classify

import (
	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// Reorder is a per-relation permutation of argument positions making a
// theory proper (Definition 16): after reordering, every relation has its
// affected positions first, followed by non-affected positions only.
type Reorder struct {
	// perm[rk][i] is the old position stored at new position i.
	perm map[core.RelKey][]int
	// affected[rk] is the number of affected positions of rk (after
	// reordering these are positions 0..affected-1).
	affected map[core.RelKey]int
}

// ProperReorder computes the permutation making th proper. It must be
// applied consistently to the theory and to every database queried against
// it.
func ProperReorder(th *core.Theory) *Reorder {
	ap := AffectedPositions(th)
	ro := &Reorder{
		perm:     make(map[core.RelKey][]int),
		affected: make(map[core.RelKey]int),
	}
	for _, rk := range th.Relations() {
		var aff, non []int
		for i := 0; i < rk.Arity; i++ {
			if ap[Position{rk, i}] {
				aff = append(aff, i)
			} else {
				non = append(non, i)
			}
		}
		ro.perm[rk] = append(aff, non...)
		ro.affected[rk] = len(aff)
	}
	return ro
}

// AffectedCount returns the number of affected positions of rk (the "last
// affected position" index i of Definition 17).
func (ro *Reorder) AffectedCount(rk core.RelKey) int { return ro.affected[rk] }

// IsIdentity reports whether the reorder permutes nothing.
func (ro *Reorder) IsIdentity() bool {
	for _, p := range ro.perm {
		for i, old := range p {
			if i != old {
				return false
			}
		}
	}
	return true
}

// Atom returns the atom with arguments permuted into proper order. Atoms
// over relations unknown to the reorder are returned unchanged.
func (ro *Reorder) Atom(a core.Atom) core.Atom {
	p, ok := ro.perm[a.Key()]
	if !ok {
		return a
	}
	out := a.Clone()
	for i, old := range p {
		out.Args[i] = a.Args[old]
	}
	return out
}

// Undo inverts the permutation on an atom.
func (ro *Reorder) Undo(a core.Atom) core.Atom {
	p, ok := ro.perm[a.Key()]
	if !ok {
		return a
	}
	out := a.Clone()
	for i, old := range p {
		out.Args[old] = a.Args[i]
	}
	return out
}

// Theory returns the theory with every atom reordered.
func (ro *Reorder) Theory(th *core.Theory) *core.Theory {
	out := th.Clone()
	for _, r := range out.Rules {
		for i := range r.Body {
			r.Body[i].Atom = ro.Atom(r.Body[i].Atom)
		}
		for i := range r.Head {
			r.Head[i] = ro.Atom(r.Head[i])
		}
	}
	return out
}

// Database returns the database with every fact reordered.
func (ro *Reorder) Database(d database.Store) *database.Database {
	out := database.New()
	for _, a := range d.UserFacts() {
		out.Add(ro.Atom(a))
	}
	return out
}

// UndoDatabase inverts the permutation on every fact of d.
func (ro *Reorder) UndoDatabase(d *database.Database) *database.Database {
	out := database.New()
	for _, a := range d.UserFacts() {
		out.Add(ro.Undo(a))
	}
	return out
}

// IsProper reports whether the theory is proper (Definition 16): no
// relation has an affected position to the right of a non-affected one.
func IsProper(th *core.Theory) bool {
	ap := AffectedPositions(th)
	for _, rk := range th.Relations() {
		seenNonAffected := false
		for i := 0; i < rk.Arity; i++ {
			if ap[Position{rk, i}] {
				if seenNonAffected {
					return false
				}
			} else {
				seenNonAffected = true
			}
		}
	}
	return true
}
