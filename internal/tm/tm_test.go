package tm

import (
	"strings"
	"testing"
	"testing/quick"
)

// words enumerates all words over {zero,one} of length n.
func words(n int) [][]string {
	if n == 0 {
		return [][]string{{}}
	}
	var out [][]string
	for _, w := range words(n - 1) {
		out = append(out, append(append([]string(nil), w...), "zero"))
		out = append(out, append(append([]string(nil), w...), "one"))
	}
	return out
}

func accepts(t *testing.T, m *ATM, w []string) bool {
	t.Helper()
	res, err := m.Accepts(w, 0)
	if err != nil {
		t.Fatalf("%s on %v: %v", m.Name, w, err)
	}
	return res.Accepted
}

func TestEvenLength(t *testing.T) {
	m := EvenLength([]string{"zero", "one"})
	for n := 1; n <= 5; n++ {
		for _, w := range words(n) {
			if got, want := accepts(t, m, w), n%2 == 0; got != want {
				t.Errorf("EvenLength(%v): got %v want %v", w, got, want)
			}
		}
	}
}

func TestEvenCount(t *testing.T) {
	m := EvenCount("one", []string{"zero", "one"})
	for n := 1; n <= 5; n++ {
		for _, w := range words(n) {
			ones := 0
			for _, s := range w {
				if s == "one" {
					ones++
				}
			}
			if got, want := accepts(t, m, w), ones%2 == 0; got != want {
				t.Errorf("EvenCount(%v): got %v want %v", w, got, want)
			}
		}
	}
}

func TestSomeSymbolExistential(t *testing.T) {
	m := SomeSymbol("one", []string{"zero", "one"})
	for n := 1; n <= 5; n++ {
		for _, w := range words(n) {
			want := strings.Contains(strings.Join(w, ","), "one")
			if got := accepts(t, m, w); got != want {
				t.Errorf("SomeSymbol(%v): got %v want %v", w, got, want)
			}
		}
	}
}

func TestAllSymbolsUniversal(t *testing.T) {
	m := AllSymbols("one", []string{"zero", "one"})
	for n := 1; n <= 5; n++ {
		for _, w := range words(n) {
			want := !strings.Contains(strings.Join(w, ","), "zero")
			if got := accepts(t, m, w); got != want {
				t.Errorf("AllSymbols(%v): got %v want %v", w, got, want)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	m := New("bad", "q0")
	if err := m.Validate(); err == nil {
		t.Error("start state without mode must be rejected")
	}
	m.SetMode("q0", Existential)
	m.AddTransition("q0", "a", Transition{Write: "a", Move: Stay, Next: "nowhere"})
	if err := m.Validate(); err == nil {
		t.Error("dangling transition target must be rejected")
	}
}

func TestMovesRespectTapeBounds(t *testing.T) {
	// A machine that tries to move left at the first cell: the transition
	// is inapplicable, so the existential state rejects.
	m := New("stuck", "q0")
	m.SetMode("q0", Existential)
	m.SetMode("acc", Accepting)
	m.AddTransition("q0", "a", Transition{Write: "a", Move: Left, Next: "acc"})
	if accepts(t, m, []string{"a", "a"}) {
		t.Error("left move at first cell must be inapplicable")
	}
}

func TestCycleDoesNotAccept(t *testing.T) {
	// An existential loop with no accepting state: least fixpoint must
	// reject despite the infinite run.
	m := New("loop", "q0")
	m.SetMode("q0", Existential)
	m.AddTransition("q0", "a", Transition{Write: "a", Move: Stay, Next: "q0"})
	if accepts(t, m, []string{"a"}) {
		t.Error("a pure loop must not accept")
	}
}

func TestUniversalVacuousAcceptance(t *testing.T) {
	m := New("vac", "q0")
	m.SetMode("q0", Universal)
	if !accepts(t, m, []string{"a"}) {
		t.Error("universal state with no applicable transition accepts vacuously")
	}
}

func TestConfigBudget(t *testing.T) {
	m := EvenCount("one", []string{"zero", "one"})
	w := make([]string, 12)
	for i := range w {
		w[i] = "one"
	}
	if _, err := m.Accepts(w, 3); err != ErrBudget {
		t.Errorf("expected budget error, got %v", err)
	}
}

func TestAcceptsRejectsEmptyWord(t *testing.T) {
	m := EvenLength([]string{"zero"})
	if _, err := m.Accepts(nil, 0); err == nil {
		t.Error("empty word must error (string databases have ≥1 tuple)")
	}
}

// Property: EvenLength agrees with the length parity on random words.
func TestEvenLengthProperty(t *testing.T) {
	m := EvenLength([]string{"zero", "one"})
	f := func(bits []bool) bool {
		if len(bits) == 0 || len(bits) > 12 {
			return true
		}
		w := make([]string, len(bits))
		for i, b := range bits {
			if b {
				w[i] = "one"
			} else {
				w[i] = "zero"
			}
		}
		res, err := m.Accepts(w, 0)
		return err == nil && res.Accepted == (len(w)%2 == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStatesAndSymbols(t *testing.T) {
	m := EvenLength([]string{"zero", "one"})
	sts := m.States()
	if len(sts) != 3 {
		t.Errorf("states: %v", sts)
	}
	syms := m.Symbols()
	if len(syms) != 2 {
		t.Errorf("symbols: %v", syms)
	}
}

func TestPenultimateIs(t *testing.T) {
	m := PenultimateIs("one", []string{"zero", "one"})
	for n := 1; n <= 5; n++ {
		for _, w := range words(n) {
			want := n >= 2 && w[n-2] == "one"
			if got := accepts(t, m, w); got != want {
				t.Errorf("PenultimateIs(%v): got %v want %v", w, got, want)
			}
		}
	}
}
