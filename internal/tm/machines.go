package tm

// This file provides a small library of concrete machines used by the
// capture experiments (Section 8): deterministic, existential and
// universal examples over arbitrary alphabets.

// EvenLength returns a deterministic machine accepting exactly the words
// of even length over the alphabet. It walks right, toggling the parity of
// the number of visited cells. This is the machine behind the paper's own
// example of a non-monotonic query: "the database has an even number of
// constants".
func EvenLength(alphabet []string) *ATM {
	m := New("even-length", "odd")
	m.SetMode("odd", Existential)
	m.SetMode("even", Existential)
	m.SetMode("acc", Accepting)
	for _, s := range alphabet {
		// Interior cells: toggle and move right.
		m.AddTransition("odd", s, Transition{Write: s, Move: Right, Next: "even", When: AtNotLast})
		m.AddTransition("even", s, Transition{Write: s, Move: Right, Next: "odd", When: AtNotLast})
		// Last cell: the count includes this cell; "even" there means the
		// total is even.
		m.AddTransition("even", s, Transition{Write: s, Move: Stay, Next: "acc", When: AtLast})
	}
	return m
}

// EvenCount returns a deterministic machine accepting the words with an
// even number of occurrences of sym.
func EvenCount(sym string, alphabet []string) *ATM {
	m := New("even-count", "e")
	m.SetMode("e", Existential)
	m.SetMode("o", Existential)
	m.SetMode("acc", Accepting)
	flip := func(st string) string {
		if st == "e" {
			return "o"
		}
		return "e"
	}
	for _, st := range []string{"e", "o"} {
		for _, s := range alphabet {
			next := st
			if s == sym {
				next = flip(st)
			}
			m.AddTransition(st, s, Transition{Write: s, Move: Right, Next: next, When: AtNotLast})
			if next == "e" {
				m.AddTransition(st, s, Transition{Write: s, Move: Stay, Next: "acc", When: AtLast})
			}
		}
	}
	return m
}

// SomeSymbol returns an existential machine accepting the words containing
// sym: at every cell it either declares the occurrence here or moves on.
func SomeSymbol(sym string, alphabet []string) *ATM {
	m := New("some-symbol", "scan")
	m.SetMode("scan", Existential)
	m.SetMode("acc", Accepting)
	for _, s := range alphabet {
		if s == sym {
			m.AddTransition("scan", s, Transition{Write: s, Move: Stay, Next: "acc"})
		}
		m.AddTransition("scan", s, Transition{Write: s, Move: Right, Next: "scan", When: AtNotLast})
	}
	return m
}

// AllSymbols returns a universal machine accepting the words consisting
// only of sym: at every cell it universally both checks the cell and
// continues right, so a single bad cell refutes acceptance.
func AllSymbols(sym string, alphabet []string) *ATM {
	m := New("all-symbols", "scan")
	m.SetMode("scan", Universal)
	m.SetMode("check", Existential)
	m.SetMode("acc", Accepting)
	for _, s := range alphabet {
		m.AddTransition("scan", s, Transition{Write: s, Move: Stay, Next: "check"})
		m.AddTransition("scan", s, Transition{Write: s, Move: Right, Next: "scan", When: AtNotLast})
	}
	// check accepts exactly on sym (no transition otherwise).
	m.AddTransition("check", sym, Transition{Write: sym, Move: Stay, Next: "acc"})
	return m
}

// PenultimateIs returns a deterministic machine accepting the words whose
// second-to-last symbol is sym: it walks to the last cell, steps back once
// (a Left move), and checks. Words of length 1 are rejected. It exercises
// leftward head movement in compiled theories.
func PenultimateIs(sym string, alphabet []string) *ATM {
	m := New("penultimate", "walk")
	m.SetMode("walk", Existential)
	m.SetMode("back", Existential)
	m.SetMode("acc", Accepting)
	for _, s := range alphabet {
		m.AddTransition("walk", s, Transition{Write: s, Move: Right, Next: "walk", When: AtNotLast})
		m.AddTransition("walk", s, Transition{Write: s, Move: Left, Next: "back", When: AtLast})
	}
	m.AddTransition("back", sym, Transition{Write: sym, Move: Stay, Next: "acc"})
	return m
}
