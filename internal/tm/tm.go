// Package tm implements alternating Turing machines over a fixed-length
// tape, the model compiled into weakly guarded theories for the capture
// results of Section 8 of the paper (Theorems 4 and 5).
//
// The machines run on a tape of exactly N cells (the length of the input
// word w(D) of a string database); there is no infinite blank tail, so
// linear-space alternating machines are expressed directly. Alternating
// PSPACE equals EXPTIME, matching the "decidable in exponential time"
// queries of Definition 20.
//
// Transitions may be guarded by the head's position class (first, last,
// interior), which lets machines detect the tape ends without extra
// markers; the compiler in internal/capture translates the guards into
// Firstk/Lastk/Next2k atoms.
package tm

import (
	"fmt"
	"strings"
)

// Mode classifies a state.
type Mode int

const (
	// Existential states accept when some applicable transition leads to
	// an accepting configuration.
	Existential Mode = iota
	// Universal states accept when every applicable transition leads to
	// an accepting configuration (vacuously if none applies).
	Universal
	// Accepting states accept immediately.
	Accepting
	// Rejecting states reject immediately.
	Rejecting
)

// Move is a head movement.
type Move int

const (
	Stay Move = iota
	Left
	Right
)

// When restricts a transition to a position class of the head.
type When int

const (
	Any When = iota
	AtFirst
	AtLast
	AtMid      // neither first nor last
	AtNotFirst // has a left neighbour
	AtNotLast  // has a right neighbour
)

// Transition is one alternative of δ(state, symbol).
type Transition struct {
	Write string
	Move  Move
	Next  string
	When  When
}

// key indexes δ.
type key struct {
	state, symbol string
}

// ATM is an alternating Turing machine.
type ATM struct {
	Name  string
	Start string
	Modes map[string]Mode
	delta map[key][]Transition
}

// New returns an empty machine with the given start state.
func New(name, start string) *ATM {
	return &ATM{Name: name, Start: start, Modes: map[string]Mode{}}
}

// SetMode declares the mode of a state.
func (m *ATM) SetMode(state string, mode Mode) { m.Modes[state] = mode }

// AddTransition adds a δ-alternative for (state, symbol).
func (m *ATM) AddTransition(state, symbol string, t Transition) {
	if m.delta == nil {
		m.delta = map[key][]Transition{}
	}
	k := key{state, symbol}
	m.delta[k] = append(m.delta[k], t)
}

// Delta returns the δ-alternatives for (state, symbol) in insertion order.
func (m *ATM) Delta(state, symbol string) []Transition {
	return m.delta[key{state, symbol}]
}

// States returns every state mentioned in modes or transitions, sorted.
func (m *ATM) States() []string {
	set := map[string]bool{m.Start: true}
	for s := range m.Modes {
		set[s] = true
	}
	for k, ts := range m.delta {
		set[k.state] = true
		for _, t := range ts {
			set[t.Next] = true
		}
	}
	return sortedKeys(set)
}

// Symbols returns every tape symbol mentioned in transitions, sorted.
func (m *ATM) Symbols() []string {
	set := map[string]bool{}
	for k, ts := range m.delta {
		set[k.symbol] = true
		for _, t := range ts {
			set[t.Write] = true
		}
	}
	return sortedKeys(set)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Validate checks that every non-final state has a mode and that
// transitions refer to declared states.
func (m *ATM) Validate() error {
	if _, ok := m.Modes[m.Start]; !ok {
		return fmt.Errorf("tm %s: start state %q has no mode", m.Name, m.Start)
	}
	for k, ts := range m.delta {
		if _, ok := m.Modes[k.state]; !ok {
			return fmt.Errorf("tm %s: state %q has transitions but no mode", m.Name, k.state)
		}
		for _, t := range ts {
			if _, ok := m.Modes[t.Next]; !ok {
				return fmt.Errorf("tm %s: transition target %q has no mode", m.Name, t.Next)
			}
		}
	}
	return nil
}

// config is a machine configuration on a fixed tape.
type config struct {
	state string
	head  int
	tape  string // symbols joined by '\x00'
}

func makeConfig(state string, head int, tape []string) config {
	return config{state, head, strings.Join(tape, "\x00")}
}

func (c config) symbols() []string { return strings.Split(c.tape, "\x00") }

// Applicable returns the transitions applicable in (state, head, N) when
// reading symbol: the When guard must match the head position and the move
// must stay on the tape.
func (m *ATM) Applicable(state, symbol string, head, n int) []Transition {
	var out []Transition
	for _, t := range m.Delta(state, symbol) {
		if !whenMatches(t.When, head, n) {
			continue
		}
		if t.Move == Left && head == 0 || t.Move == Right && head == n-1 {
			continue
		}
		out = append(out, t)
	}
	return out
}

func whenMatches(w When, head, n int) bool {
	first := head == 0
	last := head == n-1
	switch w {
	case Any:
		return true
	case AtFirst:
		return first
	case AtLast:
		return last
	case AtMid:
		return !first && !last
	case AtNotFirst:
		return !first
	case AtNotLast:
		return !last
	default:
		return false
	}
}

// RunResult reports an acceptance run.
type RunResult struct {
	Accepted bool
	Configs  int // distinct configurations explored
	Steps    int // edges in the configuration graph
}

// ErrBudget is returned when the configuration budget is exhausted.
var ErrBudget = fmt.Errorf("tm: configuration budget exhausted")

// Accepts decides whether the machine accepts the input word, by building
// the reachable configuration graph and propagating acceptance backwards
// to a least fixpoint (so cycles never accept). maxConfigs bounds the
// graph; 0 means 1,000,000.
func (m *ATM) Accepts(word []string, maxConfigs int) (*RunResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(word) == 0 {
		return nil, fmt.Errorf("tm: empty input word")
	}
	if maxConfigs == 0 {
		maxConfigs = 1_000_000
	}
	n := len(word)
	start := makeConfig(m.Start, 0, word)
	succs := map[config][]config{}
	queue := []config{start}
	seen := map[config]bool{start: true}
	edges := 0
	for len(queue) > 0 {
		if len(seen) > maxConfigs {
			return nil, ErrBudget
		}
		c := queue[0]
		queue = queue[1:]
		mode := m.Modes[c.state]
		if mode == Accepting || mode == Rejecting {
			continue
		}
		tape := c.symbols()
		for _, t := range m.Applicable(c.state, tape[c.head], c.head, n) {
			nt := append([]string(nil), tape...)
			nt[c.head] = t.Write
			nh := c.head
			switch t.Move {
			case Left:
				nh--
			case Right:
				nh++
			}
			nc := makeConfig(t.Next, nh, nt)
			succs[c] = append(succs[c], nc)
			edges++
			if !seen[nc] {
				seen[nc] = true
				queue = append(queue, nc)
			}
		}
	}
	// Least-fixpoint acceptance.
	acc := map[config]bool{}
	for changed := true; changed; {
		changed = false
		for c := range seen {
			if acc[c] {
				continue
			}
			ok := false
			switch m.Modes[c.state] {
			case Accepting:
				ok = true
			case Rejecting:
				ok = false
			case Existential:
				for _, s := range succs[c] {
					if acc[s] {
						ok = true
						break
					}
				}
			case Universal:
				ok = true
				for _, s := range succs[c] {
					if !acc[s] {
						ok = false
						break
					}
				}
				// A universal config with no applicable transition accepts
				// vacuously; that is the ok=true default.
			}
			if ok {
				acc[c] = true
				changed = true
			}
		}
	}
	return &RunResult{Accepted: acc[start], Configs: len(seen), Steps: edges}, nil
}
