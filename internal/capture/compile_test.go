package capture

import (
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/tm"
)

func TestEncodeExtractRoundTrip(t *testing.T) {
	alpha := []string{"zero", "one"}
	for _, word := range [][]string{
		{"one"},
		{"zero", "one"},
		{"one", "one", "zero"},
		{"zero", "zero", "zero", "one"},
	} {
		db, err := Encode(word, 1, alpha)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExtractWord(db, 1, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(word) {
			t.Fatalf("length: %v vs %v", got, word)
		}
		for i := range word {
			if got[i] != word[i] {
				t.Errorf("word[%d]: got %s want %s", i, got[i], word[i])
			}
		}
	}
}

func TestEncodeDegreeTwo(t *testing.T) {
	alpha := []string{"zero", "one"}
	word := []string{"one", "zero", "zero", "one"} // d=2, k=2
	db, err := Encode(word, 2, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Constants()) != 2 {
		t.Errorf("domain size: %v", db.Constants())
	}
	got, err := ExtractWord(db, 2, alpha)
	if err != nil {
		t.Fatal(err)
	}
	for i := range word {
		if got[i] != word[i] {
			t.Errorf("word[%d]: got %s want %s", i, got[i], word[i])
		}
	}
	// Length 3 is not a square: must be rejected.
	if _, err := Encode([]string{"one", "one", "one"}, 2, alpha); err == nil {
		t.Error("non-power length must be rejected")
	}
}

func TestExtractRejectsBrokenStringDB(t *testing.T) {
	alpha := []string{"zero", "one"}
	db, _ := Encode([]string{"one", "zero"}, 1, alpha)
	// Add a second symbol on a tuple: ambiguous.
	db.Add(core.NewAtom("zero", core.Const(ConstName(0))))
	if _, err := ExtractWord(db, 1, alpha); err == nil {
		t.Error("ambiguous symbol must be rejected")
	}
}

func TestCompiledTheoryIsWeaklyGuarded(t *testing.T) {
	for _, m := range []*tm.ATM{
		tm.EvenLength([]string{"zero", "one"}),
		tm.AllSymbols("one", []string{"zero", "one"}),
		tm.SomeSymbol("one", []string{"zero", "one"}),
	} {
		th, err := Compile(m, 1, []string{"zero", "one"})
		if err != nil {
			t.Fatal(err)
		}
		rep := classify.Classify(th)
		if !rep.Member[classify.WeaklyGuarded] {
			t.Errorf("Σ_%s must be weakly guarded (offender %v)", m.Name, rep.Offender[classify.WeaklyGuarded])
		}
	}
}

// runCompiled chases the compiled theory on the encoded word and reports
// whether Accepts() is derived.
func runCompiled(t *testing.T, th *core.Theory, word []string, alpha []string, k int) bool {
	t.Helper()
	db, err := Encode(word, k, alpha)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chase.Run(th, db, chase.Options{
		Variant:  chase.Restricted,
		MaxDepth: 3*len(word) + 6,
		MaxFacts: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Entails(core.NewAtom(AcceptRel))
}

// Theorem 4 on concrete machines: the compiled weakly guarded theory
// agrees with the direct ATM simulation on every word.
func TestTheoremFourAgainstSimulator(t *testing.T) {
	alpha := []string{"zero", "one"}
	machines := []*tm.ATM{
		tm.EvenLength(alpha),
		tm.EvenCount("one", alpha),
		tm.SomeSymbol("one", alpha),
		tm.AllSymbols("one", alpha),
	}
	var wordsUpTo func(n int) [][]string
	wordsUpTo = func(n int) [][]string {
		if n == 0 {
			return [][]string{{}}
		}
		var out [][]string
		for _, w := range wordsUpTo(n - 1) {
			out = append(out, append(append([]string(nil), w...), "zero"))
			out = append(out, append(append([]string(nil), w...), "one"))
		}
		return out
	}
	for _, m := range machines {
		th, err := Compile(m, 1, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for n := 1; n <= 4; n++ {
			for _, w := range wordsUpTo(n) {
				sim, err := m.Accepts(w, 0)
				if err != nil {
					t.Fatal(err)
				}
				got := runCompiled(t, th, w, alpha, 1)
				if got != sim.Accepted {
					t.Errorf("%s on %v: compiled=%v simulator=%v", m.Name, w, got, sim.Accepted)
				}
			}
		}
	}
}

// Theorem 4 at degree k=2: positions are pairs of constants.
func TestTheoremFourDegreeTwo(t *testing.T) {
	alpha := []string{"zero", "one"}
	m := tm.EvenCount("one", alpha)
	th, err := Compile(m, 2, alpha)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range [][]string{
		{"one", "zero", "zero", "one"},
		{"one", "zero", "zero", "zero"},
	} {
		sim, err := m.Accepts(w, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := runCompiled(t, th, w, alpha, 2); got != sim.Accepted {
			t.Errorf("k=2 %v: compiled=%v simulator=%v", w, got, sim.Accepted)
		}
	}
}

// Leftward head movement in compiled theories (Theorem 4 with a machine
// that walks to the end and steps back).
func TestTheoremFourLeftMoves(t *testing.T) {
	alpha := []string{"zero", "one"}
	m := tm.PenultimateIs("one", alpha)
	th, err := Compile(m, 1, alpha)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range [][]string{
		{"one", "zero"},
		{"zero", "one"},
		{"zero", "one", "zero"},
		{"one", "zero", "zero"},
		{"one"},
	} {
		sim, err := m.Accepts(w, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := runCompiled(t, th, w, alpha, 1); got != sim.Accepted {
			t.Errorf("%v: compiled=%v simulator=%v", w, got, sim.Accepted)
		}
	}
}
