package capture

import (
	"context"
	"errors"
	"testing"

	"guardedrules/internal/budget"
	"guardedrules/internal/tm"
)

func TestBudgetRuleLimitReturnsPartialCompilation(t *testing.T) {
	alpha := []string{"zero", "one"}
	m := tm.EvenCount("one", alpha)
	th, err := CompileOpts(m, 1, alpha, Options{Budget: &budget.T{MaxRules: 5}})
	if !errors.Is(err, budget.ErrRuleLimit) {
		t.Fatalf("err = %v, want ErrRuleLimit", err)
	}
	if th == nil || len(th.Rules) == 0 || len(th.Rules) > 5 {
		t.Fatalf("partial compilation must hold the rules emitted so far, got %v", th)
	}
}

func TestLegacyMaxRulesWrapsSentinel(t *testing.T) {
	alpha := []string{"zero", "one"}
	m := tm.EvenCount("one", alpha)
	_, err := CompileOpts(m, 1, alpha, Options{MaxRules: 5})
	if !errors.Is(err, budget.ErrRuleLimit) {
		t.Fatalf("legacy cap err = %v, want ErrRuleLimit wrap", err)
	}
}

// Fault injection: cancel the compilation at every per-rule checkpoint.
func TestFailAtEveryCheckpoint(t *testing.T) {
	alpha := []string{"zero", "one"}
	m := tm.EvenCount("one", alpha)
	ref, err := Compile(m, 1, alpha)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; ; n++ {
		if n > 100_000 {
			t.Fatal("fault injection never ran to completion")
		}
		th, err := CompileOpts(m, 1, alpha, Options{Budget: budget.FailAt(n)})
		if err == nil {
			if len(th.Rules) != len(ref.Rules) {
				t.Fatalf("n=%d: governed run has %d rules, want %d", n, len(th.Rules), len(ref.Rules))
			}
			break
		}
		if !errors.Is(err, budget.ErrCanceled) {
			t.Fatalf("n=%d: err = %v, want ErrCanceled", n, err)
		}
		if th == nil {
			t.Fatalf("n=%d: canceled compilation must return partial theory", n)
		}
	}
}

func TestContextCancelStopsCompilation(t *testing.T) {
	alpha := []string{"zero", "one"}
	m := tm.EvenCount("one", alpha)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	th, err := CompileOpts(m, 1, alpha, Options{Budget: &budget.T{Ctx: ctx}})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if th == nil {
		t.Fatal("canceled compilation must return the partial theory")
	}
}
