package capture

import (
	"fmt"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/tm"
)

// AcceptRel is the 0-ary output relation of compiled machines: the query
// (Σ_M, AcceptRel) answers "does M accept w(D)?".
const AcceptRel = "Accepts"

// Options governs an ATM compilation run.
type Options struct {
	// MaxRules caps the number of compiled rules (0 = unlimited). The
	// compiled theory is polynomial in |δ| and the tape alphabet, but large
	// machines with many frame rules can still explode.
	MaxRules int
	// Budget, when non-nil, governs the run: its context/deadline cancels
	// the compilation between rules, its MaxRules overrides the cap above,
	// and exhaustion returns the rules compiled so far alongside a typed
	// *budget.Error.
	Budget *budget.T
}

// Compile translates an alternating Turing machine into a weakly guarded
// theory Σ_M over string databases of degree k (Theorem 4): for every
// string database D, Σ_M, D ⊨ Accepts() iff M accepts w(D).
//
// Configurations of M become labeled nulls invented by guarded existential
// rules; the tape is stored cell-wise in relations Tape_s(conf, ~pos) over
// the k-tuples of D's constants, and acceptance propagates backwards
// through the alternation via Acc/AccVia relations. All rules are weakly
// guarded: the configuration nulls are the only unsafe variables and each
// rule guards them with a single atom.
func Compile(m *tm.ATM, k int, alphabet []string) (*core.Theory, error) {
	return CompileOpts(m, k, alphabet, Options{})
}

// CompileOpts is Compile with an explicit resource budget. On budget
// exhaustion the returned theory holds the rules compiled so far (an
// incomplete machine encoding, returned for inspection only) together
// with a typed error satisfying errors.Is against the budget sentinels.
func CompileOpts(m *tm.ATM, k int, alphabet []string, opts Options) (*core.Theory, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	tk := budget.Start(opts.Budget)
	defer tk.Stop()
	c := &compiler{
		m: m, k: k, alphabet: alphabet, th: core.NewTheory(),
		tk:       tk,
		maxRules: budget.Cap(opts.Budget, func(b *budget.T) int { return b.MaxRules }, opts.MaxRules),
	}
	c.orderDatalog()
	c.initRules()
	c.transitionRules()
	c.acceptanceRules()
	if c.err != nil {
		return core.StampGenerated(c.th, "atm-compilation"), c.err
	}
	if err := c.th.CheckSafe(); err != nil {
		return nil, fmt.Errorf("capture: compiled theory unsafe: %w", err)
	}
	return core.StampGenerated(c.th, "atm-compilation"), nil
}

type compiler struct {
	m        *tm.ATM
	k        int
	alphabet []string
	th       *core.Theory
	nTrans   int
	maxRules int
	tk       *budget.Tracker
	err      error // first budget error; later adds become no-ops
}

// Relation names of the compiled theory.
func stRel(q string) string   { return "St_" + q }
func tapeRel(s string) string { return "Tape_" + s }
func stepRel(i int) string    { return fmt.Sprintf("Step_%d", i) }
func accViaRel(i int) string  { return fmt.Sprintf("AccVia_%d", i) }

const (
	headRel   = "HeadAt"
	isInitRel = "IsInit"
	accRel    = "Acc"
	ltRel     = "LtK"
	neqRel    = "NeqK"
)

// vars returns the k-tuple of variables X<p>_1..X<p>_k.
func (c *compiler) tupleVars(prefix string) []core.Term {
	out := make([]core.Term, c.k)
	for i := range out {
		out[i] = core.Var(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return out
}

func atom(rel string, args ...[]core.Term) core.Atom {
	var flat []core.Term
	for _, a := range args {
		flat = append(flat, a...)
	}
	return core.Atom{Relation: rel, Args: flat}
}

// orderDatalog derives the strict order LtK and the disequality NeqK on
// k-tuples from the input successor relation. All variables are safe, so
// the rules are weakly guarded Datalog.
func (c *compiler) orderDatalog() {
	x, y, z := c.tupleVars("X"), c.tupleVars("Y"), c.tupleVars("Z")
	c.add(core.NewRule(
		[]core.Atom{atom(NextRel(c.k), x, y)}, nil, atom(ltRel, x, y)))
	c.add(core.NewRule(
		[]core.Atom{atom(ltRel, x, y), atom(NextRel(c.k), y, z)}, nil, atom(ltRel, x, z)))
	c.add(core.NewRule(
		[]core.Atom{atom(ltRel, x, y)}, nil, atom(neqRel, x, y)))
	c.add(core.NewRule(
		[]core.Atom{atom(ltRel, x, y)}, nil, atom(neqRel, y, x)))
}

// initRules creates the initial configuration at the first cell and copies
// the input word onto its tape.
func (c *compiler) initRules() {
	x := c.tupleVars("X")
	v := core.Var("V")
	c.add(&core.Rule{
		Body: []core.Literal{core.Pos(atom(FirstRel(c.k), x))},
		Head: []core.Atom{
			atom(isInitRel, []core.Term{v}),
			atom(stRel(c.m.Start), []core.Term{v}),
			atom(headRel, []core.Term{v}, x),
		},
		Exist: []core.Term{v},
	})
	for _, s := range c.alphabet {
		c.add(core.NewRule(
			[]core.Atom{atom(isInitRel, []core.Term{v}), atom(s, x)},
			nil,
			atom(tapeRel(s), []core.Term{v}, x)))
	}
}

// transitionEntry records one compiled transition alternative.
type transitionEntry struct {
	index  int
	state  string
	symbol string
	t      tm.Transition
}

// transitions enumerates the machine's δ with global indices.
func (c *compiler) transitions() []transitionEntry {
	var out []transitionEntry
	i := 0
	for _, q := range c.m.States() {
		for _, s := range c.tapeAlphabet() {
			for _, t := range c.m.Delta(q, s) {
				out = append(out, transitionEntry{i, q, s, t})
				i++
			}
		}
	}
	c.nTrans = i
	return out
}

// tapeAlphabet is the input alphabet plus every symbol written by the
// machine.
func (c *compiler) tapeAlphabet() []string {
	set := map[string]bool{}
	for _, s := range c.alphabet {
		set[s] = true
	}
	for _, s := range c.m.Symbols() {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// whenAtoms returns the order atoms expressing the position guard for head
// tuple x, together with the fresh neighbour tuples it introduces.
func (c *compiler) whenAtoms(w tm.When, x []core.Term) []core.Atom {
	xl, xr := c.tupleVars("XL"), c.tupleVars("XR")
	switch w {
	case tm.Any:
		return nil
	case tm.AtFirst:
		return []core.Atom{atom(FirstRel(c.k), x)}
	case tm.AtLast:
		return []core.Atom{atom(LastRel(c.k), x)}
	case tm.AtMid:
		return []core.Atom{atom(NextRel(c.k), xl, x), atom(NextRel(c.k), x, xr)}
	case tm.AtNotFirst:
		return []core.Atom{atom(NextRel(c.k), xl, x)}
	case tm.AtNotLast:
		return []core.Atom{atom(NextRel(c.k), x, xr)}
	default:
		return nil
	}
}

// transitionRules compiles every δ-alternative into a guarded existential
// rule creating the successor configuration, plus the frame rule copying
// the untouched tape cells.
func (c *compiler) transitionRules() {
	v, v2 := core.Var("V"), core.Var("V2")
	for _, e := range c.transitions() {
		x := c.tupleVars("X")
		body := []core.Atom{
			atom(stRel(e.state), []core.Term{v}),
			atom(headRel, []core.Term{v}, x),
			atom(tapeRel(e.symbol), []core.Term{v}, x),
		}
		body = append(body, c.whenAtoms(e.t.When, x)...)
		newHead := x
		switch e.t.Move {
		case tm.Right:
			x2 := c.tupleVars("XS")
			body = append(body, atom(NextRel(c.k), x, x2))
			newHead = x2
		case tm.Left:
			x2 := c.tupleVars("XS")
			body = append(body, atom(NextRel(c.k), x2, x))
			newHead = x2
		}
		head := []core.Atom{
			atom(stepRel(e.index), []core.Term{v, v2}),
			atom(stRel(e.t.Next), []core.Term{v2}),
			atom(headRel, []core.Term{v2}, newHead),
			atom(tapeRel(e.t.Write), []core.Term{v2}, x),
		}
		c.add(&core.Rule{
			Body:  posLits(body),
			Head:  head,
			Exist: []core.Term{v2},
			Label: fmt.Sprintf("trans_%d", e.index),
		})
		// Frame rule: cells other than the head keep their symbol.
		y := c.tupleVars("Y")
		for _, s := range c.tapeAlphabet() {
			c.add(core.NewRule([]core.Atom{
				atom(stepRel(e.index), []core.Term{v, v2}),
				atom(tapeRel(s), []core.Term{v}, y),
				atom(headRel, []core.Term{v}, x),
				atom(neqRel, x, y),
			}, nil, atom(tapeRel(s), []core.Term{v2}, y)))
		}
	}
}

// acceptanceRules propagates acceptance backwards through the alternation.
func (c *compiler) acceptanceRules() {
	v, v2 := core.Var("V"), core.Var("V2")
	entries := c.transitions()
	// Accepting states accept outright.
	for q, mode := range c.m.Modes {
		if mode == tm.Accepting {
			c.add(core.NewRule(
				[]core.Atom{atom(stRel(q), []core.Term{v})}, nil,
				atom(accRel, []core.Term{v})))
		}
	}
	// AccVia_i(v): the i-th alternative was taken and its successor
	// accepts.
	for _, e := range entries {
		c.add(core.NewRule([]core.Atom{
			atom(stepRel(e.index), []core.Term{v, v2}),
			atom(accRel, []core.Term{v2}),
		}, nil, atom(accViaRel(e.index), []core.Term{v})))
	}
	// Existential states: one accepting alternative suffices.
	for _, e := range entries {
		if c.m.Modes[e.state] == tm.Existential {
			c.add(core.NewRule([]core.Atom{
				atom(accViaRel(e.index), []core.Term{v}),
			}, nil, atom(accRel, []core.Term{v})))
		}
	}
	// Universal states: per (state, symbol, position class), every
	// applicable alternative must accept.
	for _, q := range c.m.States() {
		if c.m.Modes[q] != tm.Universal {
			continue
		}
		for _, s := range c.tapeAlphabet() {
			for _, pc := range positionClasses {
				x := c.tupleVars("X")
				body := []core.Atom{
					atom(stRel(q), []core.Term{v}),
					atom(headRel, []core.Term{v}, x),
					atom(tapeRel(s), []core.Term{v}, x),
				}
				body = append(body, c.classAtoms(pc, x)...)
				for _, e := range entries {
					if e.state != q || e.symbol != s {
						continue
					}
					if pc.applicable(e.t) {
						body = append(body, atom(accViaRel(e.index), []core.Term{v}))
					}
				}
				c.add(core.NewRule(body, nil, atom(accRel, []core.Term{v})))
			}
		}
	}
	// Acceptance of the initial configuration answers the query.
	c.add(core.NewRule([]core.Atom{
		atom(isInitRel, []core.Term{v}),
		atom(accRel, []core.Term{v}),
	}, nil, core.NewAtom(AcceptRel)))
}

// positionClass distinguishes where the head can sit: the applicability of
// a transition (its When guard and its move) depends only on this class.
type positionClass struct {
	name        string
	first, last bool
}

var positionClasses = []positionClass{
	{"firstlast", true, true},
	{"firstonly", true, false},
	{"lastonly", false, true},
	{"mid", false, false},
}

// applicable mirrors tm.Applicable for a position class.
func (pc positionClass) applicable(t tm.Transition) bool {
	switch t.When {
	case tm.AtFirst:
		if !pc.first {
			return false
		}
	case tm.AtLast:
		if !pc.last {
			return false
		}
	case tm.AtMid:
		if pc.first || pc.last {
			return false
		}
	case tm.AtNotFirst:
		if pc.first {
			return false
		}
	case tm.AtNotLast:
		if pc.last {
			return false
		}
	}
	if t.Move == tm.Left && pc.first || t.Move == tm.Right && pc.last {
		return false
	}
	return true
}

// classAtoms expresses the position class positively via the order
// relations.
func (c *compiler) classAtoms(pc positionClass, x []core.Term) []core.Atom {
	var out []core.Atom
	if pc.first {
		out = append(out, atom(FirstRel(c.k), x))
	} else {
		out = append(out, atom(NextRel(c.k), c.tupleVars("XL"), x))
	}
	if pc.last {
		out = append(out, atom(LastRel(c.k), x))
	} else {
		out = append(out, atom(NextRel(c.k), x, c.tupleVars("XR")))
	}
	return out
}

func posLits(atoms []core.Atom) []core.Literal {
	out := make([]core.Literal, len(atoms))
	for i, a := range atoms {
		out[i] = core.Pos(a)
	}
	return out
}

func (c *compiler) add(r *core.Rule) {
	if c.err != nil {
		return // sticky: keep the partial theory at the point of exhaustion
	}
	// Per-rule checkpoint: cancellation, deadline and FailAt injection.
	if err := c.tk.Check(); err != nil {
		c.err = fmt.Errorf("capture: %w", err)
		return
	}
	if c.maxRules > 0 && len(c.th.Rules) >= c.maxRules {
		c.err = fmt.Errorf("capture: compilation exceeded %d rules: %w",
			c.maxRules, c.tk.Exhausted(budget.ErrRuleLimit))
		return
	}
	if r.Label == "" {
		r.Label = fmt.Sprintf("cmp_%d", len(c.th.Rules))
	}
	c.th.Add(r)
	c.tk.AddRules(1)
}
