// Package capture implements the capturing results of Section 8 of the
// paper: string databases (Definition 20), the compilation of alternating
// polynomial-space Turing machines into weakly guarded theories
// (Theorem 4), the 12-rule ordering program Σsucc and the full stratified
// weakly guarded construction capturing EXPTIME Boolean queries
// (Theorem 5).
package capture

import (
	"fmt"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// FirstRel, NextRel and LastRel name the order relations of a string
// database of degree k (arity k, 2k and k respectively).
func FirstRel(k int) string { return fmt.Sprintf("First%d", k) }

// NextRel names the 2k-ary successor relation.
func NextRel(k int) string { return fmt.Sprintf("Next%d", 2*k) }

// LastRel names the k-ary maximum relation.
func LastRel(k int) string { return fmt.Sprintf("Last%d", k) }

// ConstName names the i-th domain constant of an encoded string database.
func ConstName(i int) string { return fmt.Sprintf("e%d", i) }

// Encode builds the string database of degree k whose extracted word
// w(D) is the given word over the alphabet (Definition 20): the domain has
// d constants with d^k = len(word), the k-tuples are ordered
// lexicographically via Next, and the i-th tuple carries the relation
// word[i].
func Encode(word []string, k int, alphabet []string) (*database.Database, error) {
	if k < 1 {
		return nil, fmt.Errorf("capture: degree k must be ≥ 1")
	}
	if len(word) == 0 {
		return nil, fmt.Errorf("capture: empty word")
	}
	inAlpha := make(map[string]bool, len(alphabet))
	for _, s := range alphabet {
		inAlpha[s] = true
	}
	for _, s := range word {
		if !inAlpha[s] {
			return nil, fmt.Errorf("capture: symbol %q not in alphabet", s)
		}
	}
	d := domainSize(len(word), k)
	if d == 0 {
		return nil, fmt.Errorf("capture: word length %d is not a %d-th power", len(word), k)
	}
	db := database.New()
	tuples := allTuples(d, k)
	for i, tu := range tuples {
		db.Add(core.NewAtom(word[i], tu...))
		if i+1 < len(tuples) {
			db.Add(core.NewAtom(NextRel(k), append(append([]core.Term(nil), tu...), tuples[i+1]...)...))
		}
	}
	db.Add(core.NewAtom(FirstRel(k), tuples[0]...))
	db.Add(core.NewAtom(LastRel(k), tuples[len(tuples)-1]...))
	return db, nil
}

// domainSize returns d with d^k = n, or 0 if none exists.
func domainSize(n, k int) int {
	for d := 1; ; d++ {
		p := 1
		for i := 0; i < k; i++ {
			p *= d
			if p > n {
				return 0
			}
		}
		if p == n {
			return d
		}
	}
}

// allTuples enumerates the k-tuples over e0..e{d-1} lexicographically.
func allTuples(d, k int) [][]core.Term {
	consts := make([]core.Term, d)
	for i := range consts {
		consts[i] = core.Const(ConstName(i))
	}
	out := [][]core.Term{{}}
	for i := 0; i < k; i++ {
		var next [][]core.Term
		for _, t := range out {
			for _, c := range consts {
				next = append(next, append(append([]core.Term(nil), t...), c))
			}
		}
		out = next
	}
	return out
}

// ExtractWord computes w(D) of a string database of degree k: the sequence
// of alphabet relations along the Next-chain from First to Last. It
// verifies the string database properties of Definition 20 and returns an
// error when they fail.
func ExtractWord(db *database.Database, k int, alphabet []string) ([]string, error) {
	firstKey := core.RelKey{Name: FirstRel(k), Arity: k}
	lastKey := core.RelKey{Name: LastRel(k), Arity: k}
	nextKey := core.RelKey{Name: NextRel(k), Arity: 2 * k}
	firsts := db.Facts(firstKey)
	if len(firsts) != 1 {
		return nil, fmt.Errorf("capture: expected exactly one %s fact, found %d", firstKey.Name, len(firsts))
	}
	lasts := db.Facts(lastKey)
	if len(lasts) != 1 {
		return nil, fmt.Errorf("capture: expected exactly one %s fact, found %d", lastKey.Name, len(lasts))
	}
	symbolAt := func(tu []core.Term) (string, error) {
		found := ""
		for _, s := range alphabet {
			if db.Has(core.NewAtom(s, tu...)) {
				if found != "" {
					return "", fmt.Errorf("capture: tuple %v carries both %s and %s", tu, found, s)
				}
				found = s
			}
		}
		if found == "" {
			return "", fmt.Errorf("capture: tuple %v carries no alphabet relation", tu)
		}
		return found, nil
	}
	var word []string
	cur := firsts[0].Args
	seen := map[string]bool{}
	for {
		keyStr := core.NewAtom("", cur...).String()
		if seen[keyStr] {
			return nil, fmt.Errorf("capture: Next relation has a cycle at %v", cur)
		}
		seen[keyStr] = true
		s, err := symbolAt(cur)
		if err != nil {
			return nil, err
		}
		word = append(word, s)
		if tupleEqual(cur, lasts[0].Args) {
			break
		}
		succ := db.FactsWith(nextKey, 0, cur[0])
		var next []core.Term
		for _, f := range succ {
			if tupleEqual(f.Args[:k], cur) {
				if next != nil {
					return nil, fmt.Errorf("capture: tuple %v has two successors", cur)
				}
				next = f.Args[k:]
			}
		}
		if next == nil {
			return nil, fmt.Errorf("capture: tuple %v has no successor before Last", cur)
		}
		cur = next
	}
	return word, nil
}

func tupleEqual(a, b []core.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
