package capture

import (
	"fmt"

	"guardedrules/internal/core"
)

// Lexicographic tuple orders (the Σcode prerequisite of Section 8: "define
// relations Firstn, Next2n and Lastn to store a lexicographically ordered
// sequence of n-tuples of constants from D, which can be done using plain
// Datalog rules [16]").
//
// The rules here build, for every arity level 2..n, the order on k-tuples
// from the order on (k-1)-tuples and the base order on constants. In the
// ordering-indexed mode of Theorem 5 every relation carries the ordering
// null u as its last argument, and the base order is OMin/OSucc/OMax of
// Σsucc; the rules stay weakly guarded because u is the only unsafe
// variable and every rule contains a base-order atom holding it.

// lexFirst, lexNext and lexLast name the u-indexed k-tuple order
// relations (arity k+1, 2k+1 and k+1).
func lexFirst(k int) string { return fmt.Sprintf("LexFirst_%d", k) }
func lexNext(k int) string  { return fmt.Sprintf("LexNext_%d", k) }
func lexLast(k int) string  { return fmt.Sprintf("LexLast_%d", k) }

// LexOrderProgram returns the Datalog rules deriving the u-indexed
// lexicographic order on k-tuples from Σsucc's OMin/OSucc/OMax. For k = 1
// the program just aliases the base relations.
func LexOrderProgram(k int) []*core.Rule {
	u := core.Var("U")
	var rules []*core.Rule
	add := func(body []core.Atom, head core.Atom, label string) {
		r := core.NewRule(body, nil, head)
		r.Label = label
		rules = append(rules, r)
	}
	tuple := func(prefix string, n int) []core.Term {
		out := make([]core.Term, n)
		for i := range out {
			out[i] = core.Var(fmt.Sprintf("%s%d", prefix, i+1))
		}
		return out
	}
	cat := func(parts ...[]core.Term) []core.Term {
		var out []core.Term
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	// Level 1: aliases of the base order.
	x1, y1 := core.Var("X1"), core.Var("Y1")
	add([]core.Atom{core.NewAtom("OMin", x1, u)},
		core.NewAtom(lexFirst(1), x1, u), "lex1_first")
	add([]core.Atom{core.NewAtom("OSucc", x1, y1, u)},
		core.NewAtom(lexNext(1), x1, y1, u), "lex1_next")
	add([]core.Atom{core.NewAtom("OMax", x1, u)},
		core.NewAtom(lexLast(1), x1, u), "lex1_last")
	// Levels 2..k.
	for n := 2; n <= k; n++ {
		xs := tuple("X", n-1)
		ys := tuple("Y", n-1)
		a, b := core.Var("A"), core.Var("B")
		// First: minimal prefix + minimal digit.
		add([]core.Atom{
			core.NewAtom(lexFirst(n-1), cat(xs, []core.Term{u})...),
			core.NewAtom("OMin", a, u),
		}, core.NewAtom(lexFirst(n), cat(xs, []core.Term{a}, []core.Term{u})...),
			fmt.Sprintf("lex%d_first", n))
		// Next, same prefix: advance the last digit. The prefix must be a
		// valid tuple; membership is witnessed by reachability from the
		// first tuple, which Next itself provides — so the rule quantifies
		// the prefix with the level-(n-1) domain: first or successor.
		add([]core.Atom{
			core.NewAtom(lexDom(n-1), cat(xs, []core.Term{u})...),
			core.NewAtom("OSucc", a, b, u),
		}, core.NewAtom(lexNext(n), cat(xs, []core.Term{a}, xs, []core.Term{b}, []core.Term{u})...),
			fmt.Sprintf("lex%d_step", n))
		// Next, carry: last digit wraps from max to min, prefix advances.
		add([]core.Atom{
			core.NewAtom(lexNext(n-1), cat(xs, ys, []core.Term{u})...),
			core.NewAtom("OMax", a, u),
			core.NewAtom("OMin", b, u),
		}, core.NewAtom(lexNext(n), cat(xs, []core.Term{a}, ys, []core.Term{b}, []core.Term{u})...),
			fmt.Sprintf("lex%d_carry", n))
		// Last: maximal prefix + maximal digit.
		add([]core.Atom{
			core.NewAtom(lexLast(n-1), cat(xs, []core.Term{u})...),
			core.NewAtom("OMax", a, u),
		}, core.NewAtom(lexLast(n), cat(xs, []core.Term{a}, []core.Term{u})...),
			fmt.Sprintf("lex%d_last", n))
	}
	// Domain of each level: tuples reachable from the first one.
	for n := 1; n <= k; n++ {
		xs := tuple("X", n)
		ys := tuple("Y", n)
		add([]core.Atom{core.NewAtom(lexFirst(n), cat(xs, []core.Term{u})...)},
			core.NewAtom(lexDom(n), cat(xs, []core.Term{u})...),
			fmt.Sprintf("lex%d_dom_first", n))
		add([]core.Atom{core.NewAtom(lexNext(n), cat(xs, ys, []core.Term{u})...)},
			core.NewAtom(lexDom(n), cat(ys, []core.Term{u})...),
			fmt.Sprintf("lex%d_dom_next", n))
	}
	// Tuple disequality per level, needed by the frame rules of the
	// ordering-indexed machine: ~x ≠ ~y iff one precedes the other.
	for n := 1; n <= k; n++ {
		xs := tuple("X", n)
		ys := tuple("Y", n)
		add([]core.Atom{core.NewAtom(lexLt(n), cat(xs, ys, []core.Term{u})...)},
			core.NewAtom(lexNeq(n), cat(xs, ys, []core.Term{u})...),
			fmt.Sprintf("lex%d_neq_lt", n))
		add([]core.Atom{core.NewAtom(lexLt(n), cat(xs, ys, []core.Term{u})...)},
			core.NewAtom(lexNeq(n), cat(ys, xs, []core.Term{u})...),
			fmt.Sprintf("lex%d_neq_gt", n))
		zs := tuple("Z", n)
		add([]core.Atom{core.NewAtom(lexNext(n), cat(xs, ys, []core.Term{u})...)},
			core.NewAtom(lexLt(n), cat(xs, ys, []core.Term{u})...),
			fmt.Sprintf("lex%d_lt_next", n))
		add([]core.Atom{
			core.NewAtom(lexLt(n), cat(xs, ys, []core.Term{u})...),
			core.NewAtom(lexNext(n), cat(ys, zs, []core.Term{u})...),
		}, core.NewAtom(lexLt(n), cat(xs, zs, []core.Term{u})...),
			fmt.Sprintf("lex%d_lt_trans", n))
	}
	return rules
}

func lexDom(k int) string { return fmt.Sprintf("LexDom_%d", k) }
func lexLt(k int) string  { return fmt.Sprintf("LexLt_%d", k) }
func lexNeq(k int) string { return fmt.Sprintf("LexNeq_%d", k) }
