package capture

import (
	"fmt"
	"strings"

	"guardedrules/internal/chase"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/stratified"
	"guardedrules/internal/tm"
)

// BoolRel is the 0-ary output relation of Theorem 5 theories.
const BoolRel = "QBool"

// ChrName names the characteristic-function symbol for a bit vector over
// the unary signature: ChrName("10") is the symbol of domain elements that
// are in the first relation and not in the second.
func ChrName(bits string) string { return "Chr_" + bits }

// ChrAlphabet returns the alphabet of characteristic symbols for a unary
// signature of m relations, in binary counting order.
func ChrAlphabet(m int) []string {
	n := 1 << m
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		bits := make([]byte, m)
		for j := 0; j < m; j++ {
			if i&(1<<(m-1-j)) != 0 {
				bits[j] = '1'
			} else {
				bits[j] = '0'
			}
		}
		out = append(out, ChrName(string(bits)))
	}
	return out
}

// BooleanQuery builds the Theorem 5 theory for a Boolean query over a
// unary signature: a stratified weakly guarded theory Σ with 0-ary output
// BoolRel such that Σ, D ⊨ QBool() iff the machine accepts the
// characteristic string C(D) of the database under some (equivalently,
// any, for isomorphism-closed queries) total order of its constants.
//
// The theory is Σsucc (generating candidate orders) ∪ the lexicographic
// tuple order ∪ Σcode (the characteristic function, via negation on the
// input relations) ∪ the order-indexed machine simulation. The machine's
// alphabet must be ChrAlphabet(len(rels)).
func BooleanQuery(m *tm.ATM, rels []string) (*core.Theory, error) {
	return BooleanQueryK(m, rels, 1)
}

// BooleanQueryK is BooleanQuery for a signature of relations that all
// have arity k: the characteristic string enumerates the k-tuples of
// constants in lexicographic order (so the encoded string has d^k cells),
// exactly the coding C of Definition 21. With k = 2 and one binary
// relation E this expresses, e.g., "the graph has an even number of
// edges".
func BooleanQueryK(m *tm.ATM, rels []string, k int) (*core.Theory, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(rels) == 0 {
		return nil, fmt.Errorf("capture: empty signature")
	}
	if k < 1 {
		return nil, fmt.Errorf("capture: arity k must be ≥ 1")
	}
	th := SuccProgram()
	th.Add(LexOrderProgram(k)...)
	addCode(th, rels, k)
	oc := &orderedCompiler{m: m, k: k, alphabet: ChrAlphabet(len(rels)), th: th}
	oc.compile()
	if err := th.CheckSafe(); err != nil {
		return nil, fmt.Errorf("capture: Theorem 5 theory unsafe: %w", err)
	}
	return core.StampGenerated(th, "boolean-query-compilation"), nil
}

// addCode appends Σcode: the characteristic symbol of every k-tuple of
// constants under every good ordering, via semipositive negation on the
// input relations (Section 8's sketch).
func addCode(th *core.Theory, rels []string, k int) {
	u := core.Var("U")
	xs := make([]core.Term, k)
	for i := range xs {
		xs[i] = core.Var(fmt.Sprintf("X%d", i+1))
	}
	n := 1 << len(rels)
	for i := 0; i < n; i++ {
		body := []core.Literal{core.Pos(core.NewAtom("OGood", u))}
		for _, x := range xs {
			body = append(body, core.Pos(core.NewAtom(core.ACDom, x)))
		}
		bits := make([]byte, len(rels))
		for j, r := range rels {
			if i&(1<<(len(rels)-1-j)) != 0 {
				bits[j] = '1'
				body = append(body, core.Pos(core.NewAtom(r, xs...)))
			} else {
				bits[j] = '0'
				body = append(body, core.Neg(core.NewAtom(r, xs...)))
			}
		}
		th.Add(&core.Rule{
			Body:  body,
			Head:  []core.Atom{core.NewAtom(ChrName(string(bits)), append(append([]core.Term(nil), xs...), u)...)},
			Label: "code_" + string(bits),
		})
	}
}

// orderedCompiler is the order-indexed variant of the Theorem 4 compiler:
// every machine relation carries the ordering null u as an extra argument,
// the order relations are OMin/OSucc/OMax of Σsucc gated by OGood, and the
// link relation COfOrd(v,u) guards the configuration and ordering nulls
// together.
type orderedCompiler struct {
	m        *tm.ATM
	k        int
	alphabet []string
	th       *core.Theory
	nTrans   int
}

func cSt(q string) string   { return "CSt_" + q }
func cTape(s string) string { return "CTape_" + s }
func cStep(i int) string    { return fmt.Sprintf("CStep_%d", i) }
func cAccVia(i int) string  { return fmt.Sprintf("CAccVia_%d", i) }

const (
	cHead   = "CHead"
	cIsInit = "CIsInit"
	cAcc    = "CAcc"
	cOfOrd  = "COfOrd"
)

// tup returns the k-tuple of variables P1..Pk for a prefix.
func (oc *orderedCompiler) tup(prefix string) []core.Term {
	out := make([]core.Term, oc.k)
	for i := range out {
		out[i] = core.Var(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return out
}

func catTerms(parts ...[]core.Term) []core.Term {
	var out []core.Term
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func (oc *orderedCompiler) compile() {
	v, v2, u := core.Var("V"), core.Var("V2"), core.Var("U")
	uu := []core.Term{u}
	x, xl, xr, y := oc.tup("X"), oc.tup("XL"), oc.tup("XR"), oc.tup("Y")
	k := oc.k

	add := func(body []core.Atom, exist []core.Term, head ...core.Atom) {
		r := core.NewRule(body, exist, head...)
		r.Label = fmt.Sprintf("tm5_%d", len(oc.th.Rules))
		oc.th.Add(r)
	}

	// Initial configuration per good ordering, head at the first cell.
	add([]core.Atom{
		core.NewAtom("OGood", u),
		core.NewAtom(lexFirst(k), catTerms(x, uu)...),
	}, []core.Term{v},
		core.NewAtom(cIsInit, v),
		core.NewAtom(cSt(oc.m.Start), v),
		core.NewAtom(cHead, catTerms([]core.Term{v}, x)...),
		core.NewAtom(cOfOrd, v, u),
	)
	// Input copy.
	for _, s := range oc.alphabet {
		add([]core.Atom{
			core.NewAtom(cIsInit, v),
			core.NewAtom(cOfOrd, v, u),
			core.NewAtom(s, catTerms(x, uu)...),
		}, nil, core.NewAtom(cTape(s), catTerms([]core.Term{v}, x)...))
	}

	whenAtoms := func(w tm.When) []core.Atom {
		switch w {
		case tm.AtFirst:
			return []core.Atom{core.NewAtom(lexFirst(k), catTerms(x, uu)...)}
		case tm.AtLast:
			return []core.Atom{core.NewAtom(lexLast(k), catTerms(x, uu)...)}
		case tm.AtMid:
			return []core.Atom{
				core.NewAtom(lexNext(k), catTerms(xl, x, uu)...),
				core.NewAtom(lexNext(k), catTerms(x, xr, uu)...),
			}
		case tm.AtNotFirst:
			return []core.Atom{core.NewAtom(lexNext(k), catTerms(xl, x, uu)...)}
		case tm.AtNotLast:
			return []core.Atom{core.NewAtom(lexNext(k), catTerms(x, xr, uu)...)}
		default:
			return nil
		}
	}

	// Transitions.
	entries := oc.transitions()
	for _, e := range entries {
		body := []core.Atom{
			core.NewAtom(cSt(e.state), v),
			core.NewAtom(cHead, catTerms([]core.Term{v}, x)...),
			core.NewAtom(cTape(e.symbol), catTerms([]core.Term{v}, x)...),
			core.NewAtom(cOfOrd, v, u),
		}
		body = append(body, whenAtoms(e.t.When)...)
		newHead := x
		switch e.t.Move {
		case tm.Right:
			xs := oc.tup("XS")
			body = append(body, core.NewAtom(lexNext(k), catTerms(x, xs, uu)...))
			newHead = xs
		case tm.Left:
			xs := oc.tup("XS")
			body = append(body, core.NewAtom(lexNext(k), catTerms(xs, x, uu)...))
			newHead = xs
		}
		add(body, []core.Term{v2},
			core.NewAtom(cStep(e.index), v, v2, u),
			core.NewAtom(cSt(e.t.Next), v2),
			core.NewAtom(cHead, catTerms([]core.Term{v2}, newHead)...),
			core.NewAtom(cTape(e.t.Write), catTerms([]core.Term{v2}, x)...),
			core.NewAtom(cOfOrd, v2, u),
		)
		// Frame rule.
		for _, s := range oc.tapeAlphabet() {
			add([]core.Atom{
				core.NewAtom(cStep(e.index), v, v2, u),
				core.NewAtom(cTape(s), catTerms([]core.Term{v}, y)...),
				core.NewAtom(cHead, catTerms([]core.Term{v}, x)...),
				core.NewAtom(lexNeq(k), catTerms(x, y, uu)...),
			}, nil, core.NewAtom(cTape(s), catTerms([]core.Term{v2}, y)...))
		}
	}

	// Acceptance.
	for q, mode := range oc.m.Modes {
		if mode == tm.Accepting {
			add([]core.Atom{core.NewAtom(cSt(q), v)}, nil, core.NewAtom(cAcc, v))
		}
	}
	for _, e := range entries {
		add([]core.Atom{
			core.NewAtom(cStep(e.index), v, v2, u),
			core.NewAtom(cAcc, v2),
		}, nil, core.NewAtom(cAccVia(e.index), v))
		if oc.m.Modes[e.state] == tm.Existential {
			add([]core.Atom{core.NewAtom(cAccVia(e.index), v)}, nil, core.NewAtom(cAcc, v))
		}
	}
	for _, q := range oc.m.States() {
		if oc.m.Modes[q] != tm.Universal {
			continue
		}
		for _, s := range oc.tapeAlphabet() {
			for _, pc := range positionClasses {
				body := []core.Atom{
					core.NewAtom(cSt(q), v),
					core.NewAtom(cHead, catTerms([]core.Term{v}, x)...),
					core.NewAtom(cTape(s), catTerms([]core.Term{v}, x)...),
					core.NewAtom(cOfOrd, v, u),
				}
				if pc.first {
					body = append(body, core.NewAtom(lexFirst(k), catTerms(x, uu)...))
				} else {
					body = append(body, core.NewAtom(lexNext(k), catTerms(xl, x, uu)...))
				}
				if pc.last {
					body = append(body, core.NewAtom(lexLast(k), catTerms(x, uu)...))
				} else {
					body = append(body, core.NewAtom(lexNext(k), catTerms(x, xr, uu)...))
				}
				for _, e := range entries {
					if e.state == q && e.symbol == s && pc.applicable(e.t) {
						body = append(body, core.NewAtom(cAccVia(e.index), v))
					}
				}
				add(body, nil, core.NewAtom(cAcc, v))
			}
		}
	}
	add([]core.Atom{
		core.NewAtom(cIsInit, v),
		core.NewAtom(cAcc, v),
	}, nil, core.NewAtom(BoolRel))
}

func (oc *orderedCompiler) transitions() []transitionEntry {
	var out []transitionEntry
	i := 0
	for _, q := range oc.m.States() {
		for _, s := range oc.tapeAlphabet() {
			for _, t := range oc.m.Delta(q, s) {
				out = append(out, transitionEntry{i, q, s, t})
				i++
			}
		}
	}
	oc.nTrans = i
	return out
}

func (oc *orderedCompiler) tapeAlphabet() []string {
	set := map[string]bool{}
	for _, s := range oc.alphabet {
		set[s] = true
	}
	for _, s := range oc.m.Symbols() {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// EvalBoolean evaluates a Theorem 5 theory on a database: the ordering
// stratum is chased to depth d+1 (orders of the d constants), the machine
// strata to depth d+steps+4.
func EvalBoolean(th *core.Theory, db *database.Database, steps int) (bool, *stratified.Result, error) {
	d := len(db.Constants())
	res, err := stratified.Eval(th, db, stratified.Options{
		StratumChase: func(i int, rules []*core.Rule) chase.Options {
			depth := d + steps + 4
			for _, r := range rules {
				for _, h := range r.Head {
					if strings.HasPrefix(h.Relation, "OSucc4") {
						depth = d + 1
					}
				}
			}
			return chase.Options{Variant: chase.Restricted, MaxDepth: depth, MaxFacts: 2_000_000}
		},
	})
	if err != nil {
		return false, nil, err
	}
	return res.Entails(core.NewAtom(BoolRel)), res, nil
}
