package capture

import (
	"sort"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

// SuccProgram returns the 12-rule weakly guarded stratified program Σsucc
// of the proof of Theorem 5: it creates an infinite forest of candidate
// orderings of the active domain, one labeled null per candidate, and
// derives OGood(u) exactly for the nulls u representing a total order of
// the constants. The relations OMin(·,u), OMax(·,u) and OSucc(·,·,u) then
// describe that order.
//
// Beyond the paper's listing, the program includes the projection
// OSucc4(x,y,u,v) → OSucc(x,y,v) — the new edge belongs to the extended
// ordering — which the paper leaves implicit, and the derived disequality
// ONeq used by the machine rules of Theorem 5.
func SuccProgram() *core.Theory {
	return parser.MustParseTheory(`
% (1) every constant starts a candidate ordering.
ACDom(X) -> exists U. OMin(X,U), ONew(X,U).
% (2) every candidate ordering extends by every constant.
ONew(X,U), ACDom(Y) -> exists V. OSucc4(X,Y,U,V), ONew(Y,V).
% (3) the newest element becomes old.
ONew(X,U) -> OOld(X,U).
% (4) old elements persist to extensions.
OSucc4(X,Y,U,V), OOld(X2,U) -> OOld(X2,V).
% (5) the minimum persists to extensions.
OSucc4(X,Y,U,V), OMin(X2,U) -> OMin(X2,V).
% (6) successor edges persist to extensions.
OSucc4(X,Y,U,V), OSucc(X2,Y2,U) -> OSucc(X2,Y2,V).
% (6b) the extending edge belongs to the extension.
OSucc4(X,Y,U,V) -> OSucc(X,Y,V).
% (7)-(8) the strict order.
OSucc(X,Y,U) -> OLt(X,Y,U).
OLt(X,Y,U), OLt(Y,Z,U) -> OLt(X,Z,U).
% (9) cycles flag repetitions.
OLt(X,X,U) -> ORepetition(U).
% (10) missing constants flag omissions.
OOld(Y,U), ACDom(X), not OOld(X,U) -> OOmission(U).
% (11) complete repetition-free candidates are good.
OOld(X,U), not ORepetition(U), not OOmission(U) -> OGood(U).
% (12) the newest element of a good ordering is its maximum.
ONew(X,U), OGood(U) -> OMax(X,U).
% Derived disequality, used by the machine rules of Theorem 5.
OLt(X,Y,U) -> ONeq(X,Y,U).
OLt(X,Y,U) -> ONeq(Y,X,U).
`)
}

// GoodOrderings extracts, from an evaluated Σsucc database, the total
// orders represented by OGood nulls: for each good u, the constants in
// OSucc-chain order from OMin to OMax.
func GoodOrderings(db *database.Database) [][]core.Term {
	goodKey := core.RelKey{Name: "OGood", Arity: 1}
	var out [][]core.Term
	for _, g := range db.Facts(goodKey) {
		u := g.Args[0]
		order := orderOf(db, u)
		if order != nil {
			out = append(out, order)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for x := range out[i] {
			if x >= len(out[j]) {
				return false
			}
			if out[i][x] != out[j][x] {
				return out[i][x].Name < out[j][x].Name
			}
		}
		return len(out[i]) < len(out[j])
	})
	return out
}

// orderOf walks the OSucc chain of ordering u.
func orderOf(db *database.Database, u core.Term) []core.Term {
	minKey := core.RelKey{Name: "OMin", Arity: 2}
	succKey := core.RelKey{Name: "OSucc", Arity: 3}
	var cur core.Term
	for _, f := range db.FactsWith(minKey, 1, u) {
		cur = f.Args[0]
	}
	if cur == (core.Term{}) {
		return nil
	}
	order := []core.Term{cur}
	for {
		var next core.Term
		found := false
		for _, f := range db.FactsWith(succKey, 2, u) {
			if f.Args[0] == cur {
				next = f.Args[1]
				found = true
				break
			}
		}
		if !found {
			return order
		}
		cur = next
		order = append(order, cur)
	}
}
