package capture

import (
	"fmt"
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/stratified"
	"guardedrules/internal/tm"
)

func TestSuccProgramIsStratifiedWeaklyGuarded(t *testing.T) {
	th := SuccProgram()
	if _, err := datalog.Stratify(th); err != nil {
		t.Fatalf("Σsucc must be stratified: %v", err)
	}
	if !stratified.IsWeaklyGuarded(th) {
		rep := classify.Classify(th)
		t.Errorf("Σsucc must be weakly guarded (offender %v)", rep.Offender[classify.WeaklyGuarded])
	}
}

// The proof of Theorem 5: for every total order of the constants there is
// a Good null representing it, and every Good null represents a total
// order. On d constants there are exactly d! of them.
func TestSuccProgramEnumeratesAllOrders(t *testing.T) {
	for d := 1; d <= 3; d++ {
		db := database.New()
		for i := 0; i < d; i++ {
			db.Add(core.NewAtom("Obj", core.Const(fmt.Sprintf("c%d", i))))
		}
		res, err := stratified.Eval(SuccProgram(), db, stratified.Options{
			Chase: chase.Options{Variant: chase.Restricted, MaxDepth: d + 1, MaxFacts: 500_000},
		})
		if err != nil {
			t.Fatal(err)
		}
		orders := GoodOrderings(res.DB)
		fact := 1
		for i := 2; i <= d; i++ {
			fact *= i
		}
		if len(orders) != fact {
			t.Fatalf("d=%d: expected %d good orderings, got %d", d, fact, len(orders))
		}
		seen := map[string]bool{}
		for _, o := range orders {
			if len(o) != d {
				t.Errorf("ordering of wrong length: %v", o)
			}
			distinct := map[core.Term]bool{}
			key := ""
			for _, c := range o {
				distinct[c] = true
				key += c.Name + ","
			}
			if len(distinct) != d {
				t.Errorf("ordering with repetition: %v", o)
			}
			if seen[key] {
				t.Errorf("duplicate ordering: %v", o)
			}
			seen[key] = true
		}
	}
}

func TestBooleanQueryIsStratifiedWeaklyGuarded(t *testing.T) {
	m := tm.EvenLength(ChrAlphabet(1))
	th, err := BooleanQuery(m, []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := datalog.Stratify(th); err != nil {
		t.Fatalf("Theorem 5 theory must be stratified: %v", err)
	}
	if !stratified.IsWeaklyGuarded(th) {
		rep := classify.Classify(th)
		t.Errorf("Theorem 5 theory must be weakly guarded (offender %v)", rep.Offender[classify.WeaklyGuarded])
	}
}

// Theorem 5 end to end on the paper's own motivating non-monotonic query:
// "does the database have an even number of constants?".
func TestTheoremFiveEvenConstants(t *testing.T) {
	m := tm.EvenLength(ChrAlphabet(1))
	th, err := BooleanQuery(m, []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= 3; d++ {
		db := database.New()
		for i := 0; i < d; i++ {
			// Mix R and non-R constants.
			if i%2 == 0 {
				db.Add(core.NewAtom("R", core.Const(fmt.Sprintf("c%d", i))))
			} else {
				db.Add(core.NewAtom("S", core.Const(fmt.Sprintf("c%d", i))))
			}
		}
		got, _, err := EvalBoolean(th, db, d+2)
		if err != nil {
			t.Fatal(err)
		}
		want := d%2 == 0
		if got != want {
			t.Errorf("d=%d: even-constants query got %v want %v", d, got, want)
		}
	}
}

// Theorem 5 with a query that depends on the input relation: an even
// number of R-constants.
func TestTheoremFiveEvenRCount(t *testing.T) {
	m := tm.EvenCount(ChrName("1"), ChrAlphabet(1))
	th, err := BooleanQuery(m, []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		inR, outR int
		want      bool
	}{
		{1, 1, false},
		{2, 1, true},
		{1, 2, false},
		{2, 0, true},
	}
	for _, c := range cases {
		db := database.New()
		for i := 0; i < c.inR; i++ {
			db.Add(core.NewAtom("R", core.Const(fmt.Sprintf("r%d", i))))
		}
		for i := 0; i < c.outR; i++ {
			db.Add(core.NewAtom("S", core.Const(fmt.Sprintf("s%d", i))))
		}
		d := c.inR + c.outR
		got, _, err := EvalBoolean(th, db, d+2)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("inR=%d outR=%d: got %v want %v", c.inR, c.outR, got, c.want)
		}
	}
}

// The query must be order-invariant: whichever good ordering the machine
// reads, the verdict agrees (isomorphism-closed queries, Definition 21).
func TestTheoremFiveOrderInvariance(t *testing.T) {
	m := tm.SomeSymbol(ChrName("1"), ChrAlphabet(1))
	th, err := BooleanQuery(m, []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	db := database.New()
	db.Add(core.NewAtom("R", core.Const("a")))
	db.Add(core.NewAtom("S", core.Const("b")))
	got, _, err := EvalBoolean(th, db, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("SomeSymbol(Chr_1) must accept: a is in R")
	}
	db2 := database.New()
	db2.Add(core.NewAtom("S", core.Const("a")))
	db2.Add(core.NewAtom("S", core.Const("b")))
	got2, _, err := EvalBoolean(th, db2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got2 {
		t.Error("SomeSymbol(Chr_1) must reject: no constant is in R")
	}
}

// The lexicographic tuple order (Section 8's Firstn/Next2n/Lastn step)
// enumerates all d^k tuples: verified by walking LexNext_2 chains.
func TestLexOrderEnumeratesPairs(t *testing.T) {
	th := SuccProgram()
	th.Add(LexOrderProgram(2)...)
	d := 2
	db := database.New()
	for i := 0; i < d; i++ {
		db.Add(core.NewAtom("Obj", core.Const(fmt.Sprintf("c%d", i))))
	}
	res, err := stratified.Eval(th, db, stratified.Options{
		Chase: chase.Options{Variant: chase.Restricted, MaxDepth: d + 1, MaxFacts: 2_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	// For each good ordering u: exactly one LexFirst_2, one LexLast_2, and
	// d*d - 1 LexNext_2 edges forming a chain.
	goodKey := core.RelKey{Name: "OGood", Arity: 1}
	nextKey := core.RelKey{Name: "LexNext_2", Arity: 5}
	firstKey := core.RelKey{Name: "LexFirst_2", Arity: 3}
	goods := res.DB.Facts(goodKey)
	if len(goods) != 2 {
		t.Fatalf("expected 2 good orderings, got %d", len(goods))
	}
	for _, g := range goods {
		u := g.Args[0]
		var first []core.Term
		for _, f := range res.DB.FactsWith(firstKey, 2, u) {
			first = f.Args[:2]
		}
		if first == nil {
			t.Fatal("no LexFirst_2 for a good ordering")
		}
		// Walk the chain.
		count := 1
		cur := first
		for {
			var next []core.Term
			for _, f := range res.DB.FactsWith(nextKey, 4, u) {
				if f.Args[0] == cur[0] && f.Args[1] == cur[1] {
					next = f.Args[2:4]
					break
				}
			}
			if next == nil {
				break
			}
			count++
			cur = next
			if count > d*d+1 {
				t.Fatal("lex chain too long (cycle?)")
			}
		}
		if count != d*d {
			t.Errorf("lex chain length %d, want %d", count, d*d)
		}
		if !res.DB.Has(core.NewAtom("LexLast_2", cur[0], cur[1], u)) {
			t.Error("chain must end at LexLast_2")
		}
	}
}

// Theorem 5 over a binary signature: "the graph has an even number of
// edges", a query far beyond any negation-free guarded language.
func TestTheoremFiveEvenEdges(t *testing.T) {
	m := tm.EvenCount(ChrName("1"), ChrAlphabet(1))
	th, err := BooleanQueryK(m, []string{"E"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := datalog.Stratify(th); err != nil {
		t.Fatalf("must be stratified: %v", err)
	}
	if !stratified.IsWeaklyGuarded(th) {
		rep := classify.Classify(th)
		t.Fatalf("must be weakly guarded (offender %v)", rep.Offender[classify.WeaklyGuarded])
	}
	cases := []struct {
		edges [][2]string
		want  bool
	}{
		{[][2]string{{"a", "b"}}, false},
		{[][2]string{{"a", "b"}, {"b", "a"}}, true},
		{[][2]string{{"a", "a"}, {"a", "b"}, {"b", "b"}}, false},
		{[][2]string{{"a", "a"}, {"b", "b"}}, true},
	}
	for _, c := range cases {
		db := database.New()
		db.Add(core.NewAtom("Node", core.Const("a")))
		db.Add(core.NewAtom("Node", core.Const("b")))
		for _, e := range c.edges {
			db.Add(core.NewAtom("E", core.Const(e[0]), core.Const(e[1])))
		}
		d := len(db.Constants())
		got, _, err := EvalBoolean(th, db, d*d+2)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("edges %v: got %v want %v", c.edges, got, c.want)
		}
	}
}
