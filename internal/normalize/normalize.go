// Package normalize implements the normal form of Proposition 1 /
// Definition 4: every rule has a singleton head, every rule with
// existential variables is guarded, and constants occur only in rules of
// the form → R(c). The transformation preserves query answers and keeps
// weakly (frontier-)guarded and nearly (frontier-)guarded theories in
// their class.
package normalize

import (
	"strconv"

	"guardedrules/internal/classify"
	"guardedrules/internal/core"
)

// IsNormal reports whether the theory satisfies Definition 4.
func IsNormal(th *core.Theory) bool {
	for _, r := range th.Rules {
		if len(r.Head) != 1 {
			return false
		}
		if len(r.Exist) > 0 && !classify.IsGuarded(r) {
			return false
		}
		if len(r.Constants()) > 0 && !isConstantFact(r) {
			return false
		}
	}
	return true
}

// isConstantFact reports whether r has the form → R(~c).
func isConstantFact(r *core.Rule) bool {
	return len(r.Body) == 0 && len(r.Head) == 1 && r.Head[0].IsGround()
}

// Normalize transforms the theory into normal form (Proposition 1). The
// query relation is unchanged: ans((Σ,Q),D) = ans((Normalize(Σ),Q),D).
func Normalize(th *core.Theory) *core.Theory {
	out := th.Clone()
	out.Rules = eliminateConstants(out)
	out.Rules = splitHeads(out)
	out.Rules = guardExistentials(out)
	return core.StampGenerated(out, "normalize")
}

// eliminateConstants replaces constants in rules (other than → R(~c)
// facts) by fresh variables bound by constant-marker atoms Cst_c(x), and
// adds the fact rules → Cst_c(c). The marker positions are never affected,
// so the fresh variables are safe and weak/nearly guardedness is
// preserved.
func eliminateConstants(th *core.Theory) []*core.Rule {
	var rules []*core.Rule
	needFact := make(map[core.Term]string)
	marker := func(c core.Term) string {
		if name, ok := needFact[c]; ok {
			return name
		}
		name := "Cst_" + c.Name
		needFact[c] = name
		return name
	}
	for _, r := range th.Rules {
		consts := r.Constants()
		if len(consts) == 0 || isConstantFact(r) {
			rules = append(rules, r)
			continue
		}
		avoid := []core.TermSet{r.UVars(), r.EVarSet()}
		var extra []core.Literal
		for _, c := range consts.Sorted() {
			v := core.FreshVar("c_"+c.Name+"_", avoid...)
			avoid = append(avoid, core.NewTermSet(v))
			extra = append(extra, core.Pos(core.NewAtom(marker(c), v)))
			r = replaceConstant(r, c, v)
		}
		r.Body = append(r.Body, extra...)
		r.Label += "_nc"
		rules = append(rules, r)
	}
	for _, c := range sortedKeys(needFact) {
		rules = append(rules, &core.Rule{
			Head:  []core.Atom{core.NewAtom(needFact[c], c)},
			Label: "cst_" + c.Name,
		})
	}
	return rules
}

func sortedKeys(m map[core.Term]string) []core.Term {
	s := make(core.TermSet, len(m))
	for c := range m {
		s.Add(c)
	}
	return s.Sorted()
}

// replaceConstant substitutes every occurrence of constant c by variable v
// in the rule.
func replaceConstant(r *core.Rule, c, v core.Term) *core.Rule {
	out := r.Clone()
	repl := func(a *core.Atom) {
		for i, t := range a.Args {
			if t == c {
				a.Args[i] = v
			}
		}
		for i, t := range a.Annotation {
			if t == c {
				a.Annotation[i] = v
			}
		}
	}
	for i := range out.Body {
		repl(&out.Body[i].Atom)
	}
	for i := range out.Head {
		repl(&out.Head[i])
	}
	return out
}

// splitHeads rewrites every rule with |head| > 1 into a rule deriving a
// fresh atom HD(~w) over all head variables, plus one projection rule per
// original head atom. Projection rules are guarded by HD.
func splitHeads(th *core.Theory) []*core.Rule {
	var rules []*core.Rule
	for _, r := range th.Rules {
		if len(r.Head) <= 1 {
			rules = append(rules, r)
			continue
		}
		if len(r.Body) == 0 && len(r.Exist) == 0 {
			// Ground multi-head facts split directly.
			for i, h := range r.Head {
				rules = append(rules, &core.Rule{Head: []core.Atom{h}, Label: r.Label + "_h" + itoa(i)})
			}
			continue
		}
		headVars := core.VarsOf(r.Head).Sorted()
		annVars := make(core.TermSet)
		for _, h := range r.Head {
			annVars.AddAll(h.AnnVars())
		}
		hd := core.Atom{
			Relation:   th.FreshRelation("HD"),
			Args:       headVars,
			Annotation: annVars.Sorted(),
		}
		if len(hd.Annotation) == 0 {
			hd.Annotation = nil
		}
		first := &core.Rule{Body: r.Body, Head: []core.Atom{hd}, Exist: r.Exist, Label: r.Label + "_hd"}
		rules = append(rules, first)
		for i, h := range r.Head {
			rules = append(rules, &core.Rule{
				Body:  []core.Literal{core.Pos(hd)},
				Head:  []core.Atom{h},
				Label: r.Label + "_h" + itoa(i),
			})
		}
	}
	return rules
}

// guardExistentials splits every unguarded rule with existential variables
// into a Datalog rule deriving Aux(~f) over the frontier, and a guarded
// existential rule Aux(~f) → ∃~z.H.
func guardExistentials(th *core.Theory) []*core.Rule {
	var rules []*core.Rule
	for _, r := range th.Rules {
		if len(r.Exist) == 0 || classify.IsGuarded(r) {
			rules = append(rules, r)
			continue
		}
		frontier := r.FVars().Sorted()
		annVars := make(core.TermSet)
		for _, h := range r.Head {
			annVars.AddAll(h.AnnVars())
		}
		aux := core.Atom{
			Relation:   th.FreshRelation("XG"),
			Args:       frontier,
			Annotation: annVars.Sorted(),
		}
		if len(aux.Annotation) == 0 {
			aux.Annotation = nil
		}
		rules = append(rules,
			&core.Rule{Body: r.Body, Head: []core.Atom{aux}, Label: r.Label + "_xb"},
			&core.Rule{Body: []core.Literal{core.Pos(aux)}, Head: r.Head, Exist: r.Exist, Label: r.Label + "_xh"},
		)
	}
	return rules
}

func itoa(i int) string { return strconv.Itoa(i) }
