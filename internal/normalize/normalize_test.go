package normalize

import (
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/gen"
	"guardedrules/internal/parser"
	"guardedrules/internal/termination"
)

func TestIsNormal(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`A(X) -> exists Y. R(X,Y).`, true},
		{`A(X) -> P(X), Q2(X).`, false},                // multi-head
		{`R(X,Y), S(Y,Z) -> exists W. T(Y,W).`, false}, // unguarded existential
		{`A(X) -> P(X,c).`, false},                     // constant in non-fact rule
		{`-> P(c).`, true},                             // constant fact
		{`E(X,Y) -> T(X,Y). T(X,Y), T(Y,Z) -> T(X,Z).`, true},
	}
	for _, c := range cases {
		th := parser.MustParseTheory(c.src)
		if got := IsNormal(th); got != c.want {
			t.Errorf("IsNormal(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestNormalizeProducesNormalForm(t *testing.T) {
	srcs := []string{
		`A(X) -> P(X), Q2(X).`,
		`R(X,Y), S(Y,Z) -> exists W. T(Y,W).`,
		`A(X) -> P(X,c).`,
		`A(X), B(Y) -> exists Z. R(X,Z), S(Z,Y).`,
		`A(X) -> exists Y. R(X,Y,c), P(Y).`,
		`-> P(c). A(X) -> B(X).`,
	}
	for _, src := range srcs {
		th := parser.MustParseTheory(src)
		n := Normalize(th)
		if !IsNormal(n) {
			t.Errorf("Normalize(%q) not normal:\n%v", src, n)
		}
		if err := n.CheckSafe(); err != nil {
			t.Errorf("Normalize(%q) unsafe: %v", src, err)
		}
	}
}

// Normalization must preserve ground atomic consequences over the original
// signature (Proposition 1(b)), witnessed by chasing both theories.
func TestNormalizePreservesConsequences(t *testing.T) {
	cases := []struct {
		theory string
		facts  string
	}{
		{
			`A(X) -> P(X), Q2(X). P(X), Q2(X) -> W(X).`,
			`A(a). A(b).`,
		},
		{
			`R(X,Y), S(Y,Z) -> exists W. T(Y,W). T(Y,W) -> U(Y).`,
			`R(a,b). S(b,c).`,
		},
		{
			`A(X) -> B(X,c). B(X,Y), C(Y) -> W(X).`,
			`A(a). C(c).`,
		},
		{
			`A(X), B(Y) -> exists Z. R(X,Z), S(Z,Y). R(X,Z), S(Z,Y) -> Pair(X,Y).`,
			`A(a). B(b).`,
		},
	}
	for _, c := range cases {
		th := parser.MustParseTheory(c.theory)
		orig := th.Clone()
		n := Normalize(th)
		d := database.FromAtoms(parser.MustParseFacts(c.facts))
		origRels := make(map[string]bool)
		for _, rk := range orig.Relations() {
			origRels[rk.Name] = true
		}
		r1, err := chase.Run(orig, d, chase.Options{Variant: chase.Restricted, MaxDepth: 6})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := chase.Run(n, d, chase.Options{Variant: chase.Restricted, MaxDepth: 6})
		if err != nil {
			t.Fatal(err)
		}
		g1 := r1.DB.Restrict(func(k core.RelKey) bool { return origRels[k.Name] })
		g2 := r2.DB.Restrict(func(k core.RelKey) bool { return origRels[k.Name] })
		if ok, diff := database.SameGroundAtoms(g1, g2); !ok {
			t.Errorf("theory %q: consequence mismatch: %s", c.theory, diff)
		}
	}
}

// Proposition 1(c): normalization keeps weakly/nearly (frontier-)guarded
// theories in their class.
func TestNormalizePreservesClasses(t *testing.T) {
	cases := []string{
		// weakly guarded with constants and multi-heads
		`A(X) -> exists Y. R(X,Y). R(X,Y), A(X) -> P(Y), W(X).`,
		// nearly guarded: safe datalog rule + guarded existential
		`E(X,Y) -> T(X,Y). T(X,Y), T(Y,Z) -> T(X,Z). A(X) -> exists Y. R(X,Y).`,
		// weakly frontier-guarded
		`A(X) -> exists Y. R(X,Y). R(X,Y), R(Z,Y), B(Z) -> P(Y), Q2(Z).`,
	}
	for _, src := range cases {
		th := parser.MustParseTheory(src)
		before := classify.Classify(th)
		after := classify.Classify(Normalize(th))
		for _, f := range []classify.Fragment{
			classify.WeaklyGuarded, classify.WeaklyFrontierGuarded,
			classify.NearlyGuarded, classify.NearlyFrontierGuarded,
		} {
			if before.Member[f] && !after.Member[f] {
				t.Errorf("theory %q: normalization lost %v (offender %v)", src, f, after.Offender[f])
			}
		}
	}
}

func TestNormalizeIdempotentOnNormal(t *testing.T) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		E(X,Y) -> T(X,Y).
	`)
	n := Normalize(th)
	if len(n.Rules) != len(th.Rules) {
		t.Errorf("normal theory must be unchanged: %d vs %d rules", len(n.Rules), len(th.Rules))
	}
}

func TestNormalizeConstantInHeadOnly(t *testing.T) {
	th := parser.MustParseTheory(`A(X) -> B(X,c).`)
	n := Normalize(th)
	if !IsNormal(n) {
		t.Fatalf("not normal:\n%v", n)
	}
	d := database.FromAtoms(parser.MustParseFacts(`A(a).`))
	fix, err := datalog.Eval(n, d)
	if err != nil {
		t.Fatal(err)
	}
	if !fix.Has(core.NewAtom("B", core.Const("a"), core.Const("c"))) {
		t.Error("B(a,c) must still be derived after constant elimination")
	}
}

func TestNormalizeMultiHeadWithExistential(t *testing.T) {
	th := parser.MustParseTheory(`A(X), B(Y) -> exists Z. R(X,Z), S(Z,Y).`)
	n := Normalize(th)
	if !IsNormal(n) {
		t.Fatalf("not normal:\n%v", n)
	}
	// The existential HD rule must be guarded after the two-step split.
	for _, r := range n.Rules {
		if len(r.Exist) > 0 && !classify.IsGuarded(r) {
			t.Errorf("existential rule not guarded: %v", r)
		}
	}
}

// Randomized Proposition 1: normalization of random fragment samples
// yields normal theories preserving class membership and (on weakly
// acyclic samples) ground consequences.
func TestNormalizeRandomized(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		for _, th := range []*core.Theory{
			gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 6, Seed: seed}),
			gen.RandomGuardedTheory(6, seed),
			gen.RandomWFGTheory(6, seed),
		} {
			before := classify.Classify(th)
			n := Normalize(th.Clone())
			if !IsNormal(n) {
				t.Fatalf("seed %d: not normal:\n%v", seed, n)
			}
			after := classify.Classify(n)
			for _, f := range []classify.Fragment{
				classify.WeaklyGuarded, classify.WeaklyFrontierGuarded,
				classify.NearlyGuarded, classify.NearlyFrontierGuarded,
			} {
				if before.Member[f] && !after.Member[f] {
					t.Errorf("seed %d: lost %v:\n%v\n->\n%v", seed, f, th, n)
				}
			}
			if !termination.IsWeaklyAcyclic(th) {
				continue
			}
			d := gen.ABDatabase(5, seed)
			r1, err := chase.Run(th, d, chase.Options{Variant: chase.Restricted, MaxFacts: 200_000})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := chase.Run(n, d, chase.Options{Variant: chase.Restricted, MaxFacts: 400_000})
			if err != nil {
				t.Fatal(err)
			}
			if !r1.Saturated || !r2.Saturated {
				continue
			}
			rels := make(map[string]bool)
			for _, rk := range th.Relations() {
				rels[rk.Name] = true
			}
			a := r1.DB.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
			b := r2.DB.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
			if ok, diff := database.SameGroundAtoms(a, b); !ok {
				t.Errorf("seed %d: %s", seed, diff)
			}
		}
	}
}
