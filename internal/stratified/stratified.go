// Package stratified implements existential theories with stratified
// negation (Section 8 of the paper, Definitions 22 and 23): syntax and
// safety checks, stratification, weak guardedness in the presence of
// negation, and the iterative chase semantics.
//
// The chase of a weakly guarded stratum is infinite in general; Options
// carries per-stratum chase bounds. EXPERIMENTS.md documents, per
// construction, the depth at which the relevant consequences are complete.
package stratified

import (
	"fmt"

	"guardedrules/internal/budget"
	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
)

// Options configures the per-stratum chase.
type Options struct {
	// Chase bounds applied to every stratum.
	Chase chase.Options
	// StratumChase, when non-nil, overrides Chase per stratum; it receives
	// the 0-based stratum index and the stratum's rules. The capture
	// constructions use it to bound the ordering forest of Σsucc tighter
	// than the machine-simulation strata.
	StratumChase func(i int, rules []*core.Rule) chase.Options
}

func (o Options) chaseFor(i int, rules []*core.Rule) chase.Options {
	if o.StratumChase != nil {
		return o.StratumChase(i, rules)
	}
	return o.Chase
}

// Result is the outcome of evaluating a stratified theory.
type Result struct {
	// DB is S_n of Definition 23, restricted to the original symbols.
	DB *database.Database
	// Strata is the number of strata used.
	Strata int
	// Truncated reports whether any stratum's chase hit a budget.
	Truncated bool
	// Steps sums the chase steps over all strata.
	Steps int
}

// CheckStratified verifies that the theory is stratified (Definition 22)
// and safe. It returns the strata.
func CheckStratified(th *core.Theory) ([][]*core.Rule, error) {
	if err := th.CheckSafe(); err != nil {
		return nil, err
	}
	return datalog.Stratify(th)
}

// IsWeaklyGuarded reports whether the stratified theory is weakly guarded
// in the sense of Section 8: weak guardedness of the theory obtained by
// dropping all negative atoms. (The classify package already ignores
// negated atoms.)
func IsWeaklyGuarded(th *core.Theory) bool {
	return classify.Classify(th).Member[classify.WeaklyGuarded]
}

// Eval computes chase(Σ, D) of Definition 23: the strata are chased in
// order, each against the result of the previous one, with negation
// evaluated against the completed earlier strata (negated relations are
// never derived in their own stratum, so the per-stratum chase can test
// them against the growing database safely).
func Eval(th *core.Theory, d database.Store, opts Options) (*Result, error) {
	strata, err := CheckStratified(th)
	if err != nil {
		return nil, err
	}
	res := &Result{Strata: len(strata)}
	cur := d.Clone()
	for i, rules := range strata {
		st := core.NewTheory(rules...)
		// Negated relations of this stratum must be fully known: they are
		// defined in earlier strata (or are input relations), so their
		// extension in cur is final — except under truncation, which is
		// reported.
		cres, err := chase.Run(st, cur, opts.chaseFor(i, rules))
		if err != nil {
			err = fmt.Errorf("stratified: stratum %d: %w", i, err)
			if budget.IsBudget(err) && cres != nil {
				// The stratum's partial chase is still a sound
				// under-approximation; surface it alongside the error.
				res.Steps += cres.Steps
				res.Truncated = true
				res.DB = cres.DB
				return res, err
			}
			return nil, err
		}
		res.Steps += cres.Steps
		if cres.Truncated {
			res.Truncated = true
		}
		cur = cres.DB
	}
	res.DB = cur
	return res, nil
}

// Entails reports whether the ground atom is in the stratified chase.
// Sound on truncated runs; complete only when Truncated is false or the
// bound is argued sufficient for the construction at hand.
func (r *Result) Entails(a core.Atom) bool { return r.DB.Has(a) }
