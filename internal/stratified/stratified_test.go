package stratified

import (
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

func eval(t *testing.T, theory, facts string, opts Options) *Result {
	t.Helper()
	th := parser.MustParseTheory(theory)
	d := database.FromAtoms(parser.MustParseFacts(facts))
	res, err := Eval(th, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStratifiedDatalogSemantics(t *testing.T) {
	res := eval(t, `
		Start(X) -> Reach(X).
		Reach(X), E(X,Y) -> Reach(Y).
		Node(X), not Reach(X) -> Unreach(X).
	`, `Start(a). E(a,b). Node(a). Node(b). Node(c).`, Options{})
	if !res.Entails(core.NewAtom("Unreach", core.Const("c"))) {
		t.Error("Unreach(c) must hold")
	}
	if res.Entails(core.NewAtom("Unreach", core.Const("b"))) {
		t.Error("Unreach(b) must not hold")
	}
	if res.Truncated {
		t.Error("finite program must not truncate")
	}
}

func TestExistentialWithStratifiedNegation(t *testing.T) {
	// Stratum 1 invents a null witness; stratum 2 negates a derived
	// relation.
	res := eval(t, `
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> HasWitness(X).
		Obj(X), not HasWitness(X) -> Bare(X).
	`, `A(a). Obj(a). Obj(b).`, Options{})
	if !res.Entails(core.NewAtom("Bare", core.Const("b"))) {
		t.Error("Bare(b) must hold")
	}
	if res.Entails(core.NewAtom("Bare", core.Const("a"))) {
		t.Error("Bare(a) must not hold: a has an invented witness")
	}
}

func TestSemanticsIsIterative(t *testing.T) {
	// The second stratum must see the completed first stratum, not an
	// intermediate state: P is derived late in stratum 1.
	res := eval(t, `
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
		T(X,Y) -> Connected(X).
		Node(X), not Connected(X) -> Isolated(X).
	`, `E(a,b). E(b,c). Node(a). Node(d).`, Options{})
	if !res.Entails(core.NewAtom("Isolated", core.Const("d"))) {
		t.Error("Isolated(d) must hold")
	}
	if res.Entails(core.NewAtom("Isolated", core.Const("a"))) {
		t.Error("Isolated(a) must not hold")
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	th := parser.MustParseTheory(`
		P(X), not Q2(X) -> Q2(X).
	`)
	if _, err := Eval(th, database.New(), Options{}); err == nil {
		t.Error("negation through recursion must be rejected")
	}
}

func TestTruncationReported(t *testing.T) {
	res := eval(t, `
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> A(Y).
	`, `A(a).`, Options{Chase: chase.Options{MaxDepth: 2}})
	if !res.Truncated {
		t.Error("bounded infinite chase must report truncation")
	}
}

func TestIsWeaklyGuardedWithNegation(t *testing.T) {
	wg := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), not B(Y) -> P(X).
	`)
	if !IsWeaklyGuarded(wg) {
		t.Error("negation must not break weak guardedness")
	}
	notWG := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), R(X2,Y2) -> P(Y,Y2).
	`)
	if IsWeaklyGuarded(notWG) {
		t.Error("two unguarded unsafe variables must break weak guardedness")
	}
}

func TestMonotoneUnderExtraStrata(t *testing.T) {
	// The paper's motivating non-monotonicity: plain existential rules are
	// monotone, stratified negation is not.
	small := eval(t, `Obj(X), not Mark(X) -> Plain(X).`, `Obj(a).`, Options{})
	big := eval(t, `Obj(X), not Mark(X) -> Plain(X).`, `Obj(a). Mark(a).`, Options{})
	if !small.Entails(core.NewAtom("Plain", core.Const("a"))) {
		t.Error("Plain(a) must hold on the small database")
	}
	if big.Entails(core.NewAtom("Plain", core.Const("a"))) {
		t.Error("Plain(a) must not hold once Mark(a) is added (non-monotone)")
	}
}
