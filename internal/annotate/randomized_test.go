package annotate

import (
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/gen"
	"guardedrules/internal/rewrite"
	"guardedrules/internal/termination"
)

// Theorem 2 randomized: on weakly acyclic random wfg theories, rew(Σ)
// must be weakly guarded and preserve ground atoms (modulo the position
// reordering).
func TestTheoremTwoRandomized(t *testing.T) {
	tested := 0
	for seed := int64(0); seed < 80 && tested < 10; seed++ {
		th := gen.RandomWFGTheory(5, seed)
		rep := classify.Classify(th)
		if !rep.Member[classify.WeaklyFrontierGuarded] || !termination.IsWeaklyAcyclic(th) {
			continue
		}
		res, err := RewriteWFG(th, rewrite.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%v", seed, err, th)
		}
		if !classify.Classify(res.Rewritten).Member[classify.WeaklyGuarded] {
			t.Fatalf("seed %d: rew not weakly guarded", seed)
		}
		tested++
		for dbSeed := int64(0); dbSeed < 2; dbSeed++ {
			d := gen.ABDatabase(5, seed*31+dbSeed)
			r1, err := chase.Run(th, d, chase.Options{Variant: chase.Restricted, MaxFacts: 300_000, MaxRounds: 5_000})
			if err != nil {
				t.Fatal(err)
			}
			if !r1.Saturated {
				t.Fatalf("seed %d: original chase did not saturate", seed)
			}
			dRe := res.Reorder.Database(d)
			r2, err := chase.Run(res.Rewritten, dRe, chase.Options{Variant: chase.Restricted, MaxFacts: 2_000_000, MaxRounds: 20_000})
			if err != nil {
				t.Fatal(err)
			}
			if !r2.Saturated {
				t.Fatalf("seed %d: rewritten chase did not saturate", seed)
			}
			rels := make(map[string]bool)
			for _, rk := range th.Relations() {
				rels[rk.Name] = true
			}
			a := r1.DB.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
			b := res.Reorder.UndoDatabase(r2.DB).Restrict(func(k core.RelKey) bool { return rels[k.Name] })
			if ok, diff := database.SameGroundAtoms(a, b); !ok {
				t.Errorf("seed %d db %d: %s\ntheory:\n%v", seed, dbSeed, diff, th)
			}
		}
	}
	if tested < 5 {
		t.Fatalf("only %d usable samples; generator too restrictive", tested)
	}
}
