package annotate

import (
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/normalize"
	"guardedrules/internal/parser"
	"guardedrules/internal/rewrite"
)

func TestTransformAtomRoundTrip(t *testing.T) {
	// R's positions: (R,1) affected, (R,2) not (after proper ordering).
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(Y,X).
		R(Y,X) -> B(X).
	`)
	tr, err := NewTransform(th)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAtom("R", core.Const("n"), core.Const("c"))
	ann := tr.Atom(a)
	if len(ann.Args) != 1 || len(ann.Annotation) != 1 {
		t.Fatalf("annotation split wrong: %v", ann)
	}
	if ann.Args[0] != core.Const("n") || ann.Annotation[0] != core.Const("c") {
		t.Errorf("split values wrong: %v", ann)
	}
	back := tr.Undo(ann)
	if !back.Equal(a) {
		t.Errorf("round trip: %v vs %v", back, a)
	}
}

func TestTransformRejectsImproper(t *testing.T) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> B(X).
	`)
	if _, err := NewTransform(th); err == nil {
		t.Error("improper theory must be rejected")
	}
}

func TestAnnotatedTheoryIsFrontierGuardedModuloSafe(t *testing.T) {
	// A weakly guarded theory that is not frontier-guarded.
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(Y,X).
		R(Y,X), B(Z) -> P(Y,Z).
	`)
	rep := classify.Classify(th)
	if !rep.Member[classify.WeaklyFrontierGuarded] {
		t.Fatalf("fixture must be wfg: %v", rep.Offender[classify.WeaklyFrontierGuarded])
	}
	norm := normalize.Normalize(th)
	ro := classify.ProperReorder(norm)
	proper := ro.Theory(norm)
	tr, err := NewTransform(proper)
	if err != nil {
		t.Fatal(err)
	}
	ann := tr.Theory(proper)
	ann = normalize.Normalize(ann)
	ann, err = SplitSafeFrontier(ann)
	if err != nil {
		t.Fatal(err)
	}
	// After the pipeline every rule is frontier-guarded or safe Datalog.
	ap := classify.AffectedPositions(ann)
	for _, r := range ann.Rules {
		if classify.IsFrontierGuarded(r) {
			continue
		}
		if len(classify.Unsafe(r, ap)) != 0 || len(r.Exist) != 0 {
			t.Errorf("rule neither frontier-guarded nor safe: %v", r)
		}
	}
}

// wfgAgree checks Theorem 2: ans((Σ,Q),D) = ans((rew(Σ),Q),D) via ground
// atoms of bounded chases, with the database reordered alongside.
func wfgAgree(t *testing.T, theory, facts string, depth int) {
	t.Helper()
	orig := parser.MustParseTheory(theory)
	res, err := RewriteWFG(orig, rewrite.Options{})
	if err != nil {
		t.Fatalf("RewriteWFG(%q): %v", theory, err)
	}
	rep := classify.Classify(res.Rewritten)
	if !rep.Member[classify.WeaklyGuarded] {
		t.Errorf("Theorem 2: rew(Σ) must be weakly guarded (offender %v)", rep.Offender[classify.WeaklyGuarded])
	}
	d := database.FromAtoms(parser.MustParseFacts(facts))
	rels := make(map[string]bool)
	for _, rk := range orig.Relations() {
		rels[rk.Name] = true
	}
	chOrig, err := chase.Run(orig, d, chase.Options{Variant: chase.Restricted, MaxDepth: depth, MaxFacts: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	dRe := res.Reorder.Database(d)
	chRew, err := chase.Run(res.Rewritten, dRe, chase.Options{Variant: chase.Restricted, MaxDepth: depth, MaxFacts: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	a := chOrig.DB.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
	b := res.Reorder.UndoDatabase(chRew.DB).Restrict(func(k core.RelKey) bool { return rels[k.Name] })
	if ok, diff := database.SameGroundAtoms(a, b); !ok {
		t.Errorf("theory %q on %q: %s", theory, facts, diff)
	}
}

func TestTheoremTwoBasic(t *testing.T) {
	// Weakly guarded join over a null plus safe side conditions.
	wfgAgree(t, `
		A(X) -> exists Y. R(Y,X).
		R(Y,X), B(X) -> S(Y).
		R(Y,X), S(Y) -> Hit(X).
	`, `A(a). A(b). B(a). B(b).`, 5)
}

func TestTheoremTwoScatteredSafeFrontier(t *testing.T) {
	// The rule P(Y,Z) has frontier {Y,Z} with Y unsafe and Z safe, covered
	// by no single atom: exercises SplitSafeFrontier.
	wfgAgree(t, `
		A(X) -> exists Y. R(Y,X).
		R(Y,X), B(Z) -> P(Y,Z).
		P(Y,Z), R(Y,X) -> Out(X,Z).
	`, `A(a). B(b). B(c).`, 5)
}

func TestTheoremTwoNonAffectedCarry(t *testing.T) {
	// Information flows through non-affected positions alongside nulls.
	wfgAgree(t, `
		Start(X) -> exists N. Node(N,X).
		Node(N,X), Step(X,X2) -> exists M. Node(M,X2).
		Node(N,X), Final(X) -> Reached(X).
	`, `Start(s0). Step(s0,s1). Step(s1,s2). Final(s2).`, 6)
}

func TestTheoremTwoDatalogPeriphery(t *testing.T) {
	wfgAgree(t, `
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
		T(X,Y) -> exists N. W(N,X,Y).
		W(N,X,Y), Mark(X) -> Good(Y).
	`, `E(a,b). E(b,c). Mark(a).`, 4)
}

func TestRewriteWFGRejectsNonWFG(t *testing.T) {
	// Two unsafe frontier variables in no single atom.
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), R(X2,Y2) -> P(Y,Y2).
	`)
	if _, err := RewriteWFG(th, rewrite.Options{}); err == nil {
		t.Error("non-wfg theory must be rejected")
	}
}

func TestUndoTheoryFoldsAnnotations(t *testing.T) {
	th := parser.MustParseTheory(`R[U](X) -> P[U](X).`)
	un := UndoTheory(th)
	r := un.Rules[0]
	if len(r.Body[0].Atom.Annotation) != 0 || r.Body[0].Atom.Arity() != 2 {
		t.Errorf("annotations must fold into arguments: %v", r)
	}
}

func TestTransformDatabase(t *testing.T) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(Y,X).
		R(Y,X) -> B(X).
	`)
	tr, err := NewTransform(th)
	if err != nil {
		t.Fatal(err)
	}
	d := database.FromAtoms(parser.MustParseFacts(`R(n,c). A(c).`))
	ann := tr.Database(d)
	want := core.Atom{Relation: "R", Annotation: []core.Term{core.Const("c")}, Args: []core.Term{core.Const("n")}}
	if !ann.Has(want) {
		t.Errorf("aΣ(D) must contain %v:\n%v", want, ann)
	}
	// A's only position is non-affected too: its argument moves into the
	// annotation as well.
	wantA := core.Atom{Relation: "A", Annotation: []core.Term{core.Const("c")}}
	if !ann.Has(wantA) {
		t.Errorf("aΣ(D) must contain %v:\n%v", wantA, ann)
	}
}

func TestSplitSafeFrontierRejectsNonWFG(t *testing.T) {
	// Unsafe frontier variables sharing no atom: not wfg.
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), R(X2,Y2) -> P(Y,Y2).
	`)
	if _, err := SplitSafeFrontier(th); err == nil {
		t.Error("non-wfg rule must be rejected")
	}
}

func TestSplitSafeFrontierPassthroughs(t *testing.T) {
	// Frontier-guarded and safe rules pass through unchanged.
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	out, err := SplitSafeFrontier(th)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != len(th.Rules) {
		t.Errorf("passthrough must not change rule count: %d vs %d", len(out.Rules), len(th.Rules))
	}
}
