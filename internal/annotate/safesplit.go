package annotate

import (
	"fmt"

	"guardedrules/internal/classify"
	"guardedrules/internal/core"
)

// SplitSafeFrontier prepares an annotated weakly frontier-guarded theory
// for the frontier-guarded expansion: a Datalog rule whose unsafe frontier
// variables are covered by a body atom but whose full frontier is not
// (because safe frontier variables are scattered across atoms) is split
// into
//
//	body(σ) → FS[~s](~u)        (frontier-guarded: frontier = ~u)
//	FS[~s](~u) → head(σ)        (guarded by FS)
//
// where ~u are the unsafe frontier variables and ~s the safe frontier
// variables plus the head annotation variables. Safe variables only ever
// bind to constants, so carrying them in the annotation of the fresh
// linking relation preserves the chase step by step. This realizes, at the
// rule level, the partial-grounding argument in the proof of Theorem 2.
func SplitSafeFrontier(th *core.Theory) (*core.Theory, error) {
	ap := classify.AffectedPositions(th)
	out := core.NewTheory()
	n := 0
	for _, r := range th.Rules {
		if classify.IsFrontierGuarded(r) || len(r.Exist) > 0 {
			out.Add(r)
			continue
		}
		unsafe := classify.Unsafe(r, ap)
		if len(unsafe) == 0 {
			out.Add(r) // safe Datalog rule: passes through (Definition 14)
			continue
		}
		u := r.FVars().Intersect(unsafe)
		if _, ok := guardAtomFor(r, u); !ok {
			return nil, fmt.Errorf("annotate: rule %s is not weakly frontier-guarded", r.Label)
		}
		s := r.FVars().Minus(u)
		ann := make(core.TermSet)
		ann.AddAll(s)
		for _, h := range r.Head {
			ann.AddAll(h.AnnVars())
		}
		n++
		fs := core.Atom{
			Relation: fmt.Sprintf("FSafe_%d", n),
			Args:     u.Sorted(),
		}
		if len(ann) > 0 {
			fs.Annotation = ann.Sorted()
		}
		out.Add(
			&core.Rule{Body: r.Body, Head: []core.Atom{fs}, Label: r.Label + "_fs1", Span: core.GeneratedSpan("safe-frontier-split")},
			&core.Rule{Body: []core.Literal{core.Pos(fs)}, Head: r.Head, Label: r.Label + "_fs2", Span: core.GeneratedSpan("safe-frontier-split")},
		)
	}
	return out, nil
}

func guardAtomFor(r *core.Rule, need core.TermSet) (core.Atom, bool) {
	if len(need) == 0 {
		return core.Atom{}, true
	}
	for _, a := range r.PositiveBody() {
		if a.Vars().ContainsAll(need) {
			return a, true
		}
	}
	return core.Atom{}, false
}
