// Package annotate implements the translation from weakly
// frontier-guarded to weakly guarded theories of Section 5.2 of the paper:
// the proper-theory reordering (Definition 16), the annotation transform
// aΣ / a(Σ) (Definition 17), its inverse a⁻ (Definition 18), and the
// composed rewriting rew(Σ) = a⁻(rew(a(Σ))) of Theorem 2.
package annotate

import (
	"fmt"

	"guardedrules/internal/budget"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/normalize"
	"guardedrules/internal/rewrite"
)

// Transform is the annotation context of a proper weakly frontier-guarded
// theory: for every relation, how many leading positions are affected.
// Atoms are annotated by moving the non-affected tail into the relation
// annotation (Definition 17).
type Transform struct {
	affected map[string]int // relation name → last affected position index
}

// NewTransform computes the annotation boundary of a proper theory. It
// returns an error when the theory is not proper (Definition 16).
func NewTransform(th *core.Theory) (*Transform, error) {
	if !classify.IsProper(th) {
		return nil, fmt.Errorf("annotate: theory is not proper; apply classify.ProperReorder first")
	}
	ap := classify.AffectedPositions(th)
	t := &Transform{affected: make(map[string]int)}
	for _, rk := range th.Relations() {
		n := 0
		for i := 0; i < rk.Arity; i++ {
			if ap[classify.Position{Rel: rk, Index: i}] {
				n++
			}
		}
		t.affected[rk.Name] = n
	}
	return t, nil
}

// Atom computes aΣ(R(t1,...,tn)) = R[t_{i+1},...,tn](t1,...,ti) with i the
// last affected position of R (Definition 17). Atoms over unknown
// relations are returned unchanged.
func (t *Transform) Atom(a core.Atom) core.Atom {
	if len(a.Annotation) > 0 {
		return a // already annotated
	}
	n, ok := t.affected[a.Relation]
	if !ok {
		return a
	}
	out := core.Atom{Relation: a.Relation}
	out.Args = append([]core.Term(nil), a.Args[:n]...)
	if n < len(a.Args) {
		out.Annotation = append([]core.Term(nil), a.Args[n:]...)
	}
	return out
}

// Undo computes a⁻ on a single atom: R[~v](~t) ↦ R(~t, ~v)
// (Definition 18).
func (t *Transform) Undo(a core.Atom) core.Atom {
	if len(a.Annotation) == 0 {
		return a
	}
	out := core.Atom{Relation: a.Relation}
	out.Args = append(append([]core.Term(nil), a.Args...), a.Annotation...)
	return out
}

// Theory computes a(Σ): every atom annotated (Definition 17).
func (t *Transform) Theory(th *core.Theory) *core.Theory {
	out := th.Clone()
	for _, r := range out.Rules {
		for i := range r.Body {
			r.Body[i].Atom = t.Atom(r.Body[i].Atom)
		}
		for i := range r.Head {
			r.Head[i] = t.Atom(r.Head[i])
		}
	}
	return out
}

// UndoTheory computes a⁻(Σ): every annotation folded back into trailing
// argument positions (Definition 18).
func UndoTheory(th *core.Theory) *core.Theory {
	out := th.Clone()
	for _, r := range out.Rules {
		for i := range r.Body {
			r.Body[i].Atom = undoAtom(r.Body[i].Atom)
		}
		for i := range r.Head {
			r.Head[i] = undoAtom(r.Head[i])
		}
	}
	return out
}

func undoAtom(a core.Atom) core.Atom {
	if len(a.Annotation) == 0 {
		return a
	}
	return core.Atom{
		Relation: a.Relation,
		Args:     append(append([]core.Term(nil), a.Args...), a.Annotation...),
	}
}

// Database computes aΣ(D).
func (t *Transform) Database(d *database.Database) *database.Database {
	out := database.New()
	for _, a := range d.UserFacts() {
		out.Add(t.Atom(a))
	}
	return out
}

// Result is the outcome of the weakly frontier-guarded rewriting.
type Result struct {
	// Rewritten is rew(Σ) = a⁻(rew(a(Σ))), a weakly guarded theory over
	// the (reordered) signature of Σ.
	Rewritten *core.Theory
	// Reorder is the position permutation that made Σ proper; databases
	// must be reordered with it before querying Rewritten, and answers
	// are over the reordered signature.
	Reorder *classify.Reorder
	// Stats reports the inner expansion.
	Stats *rewrite.Stats
}

// RewriteWFG computes the Theorem 2 translation for a weakly
// frontier-guarded theory: normalize, make proper, annotate, rewrite the
// resulting (nearly) frontier-guarded annotated theory, and fold
// annotations back. The result is weakly guarded. On budget exhaustion
// inside the inner expansion (opts.Budget) the partial rewriting is
// returned — annotations folded back the same way — alongside the typed
// *budget.Error.
func RewriteWFG(th *core.Theory, opts rewrite.Options) (*Result, error) {
	rep := classify.Classify(th)
	if !rep.Member[classify.WeaklyFrontierGuarded] {
		return nil, fmt.Errorf("annotate: theory is not weakly frontier-guarded (offender %v)", rep.Offender[classify.WeaklyFrontierGuarded])
	}
	norm := normalize.Normalize(th)
	ro := classify.ProperReorder(norm)
	proper := ro.Theory(norm)
	tr, err := NewTransform(proper)
	if err != nil {
		return nil, err
	}
	annotated := tr.Theory(proper)
	// Annotating can strip guard variables that only occurred at
	// non-affected positions, so existential rules may need re-guarding
	// and scattered safe frontier variables need the annotation-cargo
	// split before the frontier-guarded expansion applies.
	annotated = normalize.Normalize(annotated)
	annotated, err = SplitSafeFrontier(annotated)
	if err != nil {
		return nil, err
	}
	rew, stats, err := rewrite.Rewrite(annotated, opts)
	if err != nil && !budget.IsBudget(err) {
		return nil, err
	}
	return &Result{
		Rewritten: UndoTheory(rew),
		Reorder:   ro,
		Stats:     stats,
	}, err
}
