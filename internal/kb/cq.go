package kb

import (
	"fmt"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/hom"
	"guardedrules/internal/parser"
)

// ParseCQ parses a conjunctive query written as a single rule whose head
// is the answer atom:
//
//	R(X,Y), S(Y) -> Ans(X).
//
// The head relation name is ignored; its arguments are the answer
// variables. Negation and existential quantifiers are rejected.
func ParseCQ(src string) (CQ, error) {
	th, err := parser.ParseTheory(src)
	if err != nil {
		return CQ{}, err
	}
	if len(th.Rules) != 1 {
		return CQ{}, fmt.Errorf("kb: a conjunctive query is a single rule, got %d", len(th.Rules))
	}
	r := th.Rules[0]
	if len(r.Exist) > 0 {
		return CQ{}, fmt.Errorf("kb: conjunctive queries have no existential head variables (body variables outside the answer are implicitly existential)")
	}
	if r.HasNegation() {
		return CQ{}, fmt.Errorf("kb: conjunctive queries are negation-free")
	}
	if len(r.Head) != 1 {
		return CQ{}, fmt.Errorf("kb: expected one answer atom")
	}
	q := CQ{Answer: append([]core.Term(nil), r.Head[0].Args...), Atoms: r.PositiveBody()}
	return q, q.Validate()
}

// Freeze builds the canonical database of the query: variables become
// fresh constants ("_v_<name>"), constants stay. It returns the database
// and the frozen answer tuple.
func (q CQ) Freeze() (*database.Database, []core.Term) {
	freeze := func(t core.Term) core.Term {
		if t.IsVar() {
			return core.Const("\x00v_" + t.Name)
		}
		return t
	}
	d := database.New()
	for _, a := range q.Atoms {
		b := a.Clone()
		for i, t := range b.Args {
			b.Args[i] = freeze(t)
		}
		for i, t := range b.Annotation {
			b.Annotation[i] = freeze(t)
		}
		d.Add(b)
	}
	ans := make([]core.Term, len(q.Answer))
	for i, t := range q.Answer {
		ans[i] = freeze(t)
	}
	return d, ans
}

// ContainedIn reports whether q ⊑ q2 — every answer of q is an answer of
// q2 over every database — by the classical homomorphism criterion: q2
// maps into the canonical database of q, sending q2's answer tuple to
// q's frozen answer tuple (the Chandra–Merlin criterion).
func (q CQ) ContainedIn(q2 CQ) (bool, error) {
	if len(q.Answer) != len(q2.Answer) {
		return false, fmt.Errorf("kb: arity mismatch %d vs %d", len(q.Answer), len(q2.Answer))
	}
	if err := q.Validate(); err != nil {
		return false, err
	}
	if err := q2.Validate(); err != nil {
		return false, err
	}
	frozen, ans := q.Freeze()
	init := core.Subst{}
	for i, v := range q2.Answer {
		if prev, ok := init[v]; ok && prev != ans[i] {
			return false, nil // repeated answer variable must match twice
		}
		init[v] = ans[i]
	}
	return hom.Exists(q2.Atoms, frozen, init), nil
}

// EquivalentTo reports whether the two queries return the same answers on
// every database.
func (q CQ) EquivalentTo(q2 CQ) (bool, error) {
	a, err := q.ContainedIn(q2)
	if err != nil || !a {
		return false, err
	}
	return q2.ContainedIn(q)
}

// EvaluateOn returns the answers of the plain CQ over a database (no
// rules): all homomorphism images of the answer tuple, over constants.
func (q CQ) EvaluateOn(d database.Store) [][]core.Term {
	seen := map[string]bool{}
	var out [][]core.Term
	hom.ForEach(q.Atoms, d, nil, func(s core.Subst) bool {
		tuple := make([]core.Term, len(q.Answer))
		key := ""
		for i, v := range q.Answer {
			tuple[i] = s.Apply(v)
			if !tuple[i].IsConst() {
				return true
			}
			key += tuple[i].Name + ","
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, tuple)
		}
		return true
	})
	return out
}
