package kb

import (
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/parser"
	"guardedrules/internal/rewrite"
	"guardedrules/internal/saturate"
)

const sigmaP = `
Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
Keywords(X,K1,K2) -> hasTopic(X,K1).
hasTopic(X,Z), hasAuthor(X,U), hasAuthor(Y,U),
  hasTopic(Y,Z2), Scientific(Z2), citedIn(Y,X) -> Scientific(Z).
`

const exampleDB = `
Publication(p1). Publication(p2).
citedIn(p1,p2).
hasAuthor(p1,a1). hasAuthor(p2,a1). hasAuthor(p2,a2).
hasTopic(p1,t1). Scientific(t1).
`

func TestAttachMakesWFG(t *testing.T) {
	th := parser.MustParseTheory(sigmaP)
	q := CQ{
		Answer: []core.Term{core.Var("Y")},
		Atoms: []core.Atom{
			core.NewAtom("hasAuthor", core.Var("X"), core.Var("Y")),
			core.NewAtom("hasTopic", core.Var("X"), core.Var("Z")),
			core.NewAtom("Scientific", core.Var("Z")),
		},
	}
	kbth, err := Attach(th, q)
	if err != nil {
		t.Fatal(err)
	}
	rep := classify.Classify(kbth)
	if !rep.Member[classify.WeaklyFrontierGuarded] {
		t.Errorf("attached query must be wfg (offender %v)", rep.Offender[classify.WeaklyFrontierGuarded])
	}
}

func TestCQValidate(t *testing.T) {
	bad := CQ{Answer: []core.Term{core.Var("Z")}, Atoms: []core.Atom{core.NewAtom("R", core.Var("X"))}}
	if err := bad.Validate(); err == nil {
		t.Error("answer variable not in query must be rejected")
	}
	badConst := CQ{Answer: []core.Term{core.Const("a")}, Atoms: []core.Atom{core.NewAtom("R", core.Var("X"))}}
	if err := badConst.Validate(); err == nil {
		t.Error("constant answer term must be rejected")
	}
}

// The running example as a knowledge-base query: authors of scientific
// publications are a1 and a2.
func TestAnswerByChaseRunningExample(t *testing.T) {
	th := parser.MustParseTheory(sigmaP)
	q := CQ{
		Answer: []core.Term{core.Var("Y")},
		Atoms: []core.Atom{
			core.NewAtom("hasAuthor", core.Var("X"), core.Var("Y")),
			core.NewAtom("hasTopic", core.Var("X"), core.Var("Z")),
			core.NewAtom("Scientific", core.Var("Z")),
		},
	}
	d := database.FromAtoms(parser.MustParseFacts(exampleDB))
	ans, saturated, err := AnswerByChase(th, q, d, chase.Options{Variant: chase.Restricted, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !saturated {
		t.Error("the running example chase must saturate")
	}
	want := [][]core.Term{{core.Const("a1")}, {core.Const("a2")}}
	if ok, diff := datalog.SameAnswers(ans, want); !ok {
		t.Errorf("answers: %s (got %v)", diff, ans)
	}
}

func TestPartialGroundingMakesGuarded(t *testing.T) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(Y,X).
		R(Y,X), B(X), C(Z) -> P(Y,Z).
	`)
	rep := classify.Classify(th)
	if !rep.Member[classify.WeaklyGuarded] {
		t.Fatal("fixture must be weakly guarded")
	}
	d := database.FromAtoms(parser.MustParseFacts(`A(a). B(a). C(c1). C(c2).`))
	pg, err := PartialGrounding(th, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every rule of pg is guarded or fully ground.
	for _, r := range pg.Rules {
		if !classify.IsGuarded(r) {
			t.Errorf("pg rule not guarded: %v", r)
		}
	}
	// The active domain is {a, c1, c2}: rule 1 grounds its safe X three
	// ways, rule 2 grounds safe X and Z nine ways; 12 rules total.
	if len(pg.Rules) != 12 {
		t.Errorf("pg size: %d rules", len(pg.Rules))
	}
}

func TestPartialGroundingCap(t *testing.T) {
	th := parser.MustParseTheory(`R(X,Y), S(Z), T(W) -> P(X).`)
	d := database.FromAtoms(parser.MustParseFacts(`R(a,b). S(c). T(d).`))
	if _, err := PartialGrounding(th, d, 10); err == nil {
		t.Error("grounding cap must trigger")
	}
}

// The Section 7 pipeline agrees with the direct chase on a compact
// weakly frontier-guarded knowledge base.
func TestAnswerByPipelineAgreesWithChase(t *testing.T) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(Y,X).
		R(Y,X), B(X) -> S(Y).
	`)
	q := CQ{
		Answer: []core.Term{core.Var("X")},
		Atoms: []core.Atom{
			core.NewAtom("R", core.Var("Y"), core.Var("X")),
			core.NewAtom("S", core.Var("Y")),
		},
	}
	d := database.FromAtoms(parser.MustParseFacts(`A(a). A(b). B(a).`))
	chaseAns, _, err := AnswerByChase(th, q, d, chase.Options{Variant: chase.Restricted, MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	pipeAns, stats, err := AnswerByPipeline(th, q, d, rewrite.Options{}, saturate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := datalog.SameAnswers(chaseAns, pipeAns); !ok {
		t.Errorf("pipeline vs chase: %s (chase %v, pipeline %v, stats %+v)", diff, chaseAns, pipeAns, stats)
	}
	if stats.RewrittenRules == 0 || stats.DatalogRules == 0 {
		t.Errorf("pipeline stats empty: %+v", stats)
	}
	want := [][]core.Term{{core.Const("a")}}
	if ok, diff := datalog.SameAnswers(pipeAns, want); !ok {
		t.Errorf("expected answers {a}: %s", diff)
	}
}

// CQs whose shape is not frontier-guarded still work thanks to the ACDom
// guarding of the query rule.
func TestUnguardedCQ(t *testing.T) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	q := CQ{
		Answer: []core.Term{core.Var("X"), core.Var("Z")},
		Atoms: []core.Atom{
			core.NewAtom("T", core.Var("X"), core.Var("Y")),
			core.NewAtom("T", core.Var("Y"), core.Var("Z")),
		},
	}
	d := database.FromAtoms(parser.MustParseFacts(`E(a,b). E(b,c). E(c,d).`))
	ans, _, err := AnswerByChase(th, q, d, chase.Options{Variant: chase.Restricted})
	if err != nil {
		t.Fatal(err)
	}
	// Two-step T-pairs: since T is transitively closed, any pair with an
	// intermediate node: a-c, a-d, b-d (via direct edges) plus pairs using
	// closed edges: a->c->d, a->b->d, etc.
	found := false
	for _, tu := range ans {
		if tu[0] == core.Const("a") && tu[1] == core.Const("d") {
			found = true
		}
	}
	if !found {
		t.Errorf("(a,d) must be an answer: %v", ans)
	}
}
