package kb

import (
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

func mustCQ(t *testing.T, src string) CQ {
	t.Helper()
	q, err := ParseCQ(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestParseCQ(t *testing.T) {
	q := mustCQ(t, `R(X,Y), S(Y) -> Ans(X).`)
	if len(q.Answer) != 1 || q.Answer[0] != core.Var("X") {
		t.Errorf("answer: %v", q.Answer)
	}
	if len(q.Atoms) != 2 {
		t.Errorf("atoms: %v", q.Atoms)
	}
	if _, err := ParseCQ(`R(X), not S(X) -> Ans(X).`); err == nil {
		t.Error("negation must be rejected")
	}
	if _, err := ParseCQ(`R(X) -> exists Y. Ans(X,Y).`); err == nil {
		t.Error("existential heads must be rejected")
	}
	if _, err := ParseCQ(`R(X) -> A(X). S(X) -> B(X).`); err == nil {
		t.Error("multiple rules must be rejected")
	}
}

func TestContainment(t *testing.T) {
	// Every start of a 2-path is a start of a 1-path: q2path ⊑ q1path.
	q2path := mustCQ(t, `E(X,Y), E(Y,Z) -> Ans(X).`)
	q1path := mustCQ(t, `E(X,W) -> Ans(X).`)
	ok, err := q2path.ContainedIn(q1path)
	if err != nil || !ok {
		t.Errorf("2-path ⊑ 1-path must hold: %v %v", ok, err)
	}
	ok, err = q1path.ContainedIn(q2path)
	if err != nil || ok {
		t.Errorf("1-path ⊑ 2-path must fail: %v %v", ok, err)
	}
}

func TestContainmentWithConstants(t *testing.T) {
	qa := mustCQ(t, `E(X,b) -> Ans(X).`)
	qv := mustCQ(t, `E(X,Y) -> Ans(X).`)
	if ok, _ := qa.ContainedIn(qv); !ok {
		t.Error("constant query is contained in its generalization")
	}
	if ok, _ := qv.ContainedIn(qa); ok {
		t.Error("generalization is not contained in the constant query")
	}
}

func TestEquivalence(t *testing.T) {
	// Redundant atom: E(X,Y), E(X,Y2) ≡ E(X,Y).
	q1 := mustCQ(t, `E(X,Y), E(X,Y2) -> Ans(X).`)
	q2 := mustCQ(t, `E(X,Y) -> Ans(X).`)
	eq, err := q1.EquivalentTo(q2)
	if err != nil || !eq {
		t.Errorf("redundant atom must not change the query: %v %v", eq, err)
	}
	q3 := mustCQ(t, `E(X,X) -> Ans(X).`)
	if eq, _ := q2.EquivalentTo(q3); eq {
		t.Error("self-loop query differs from edge query")
	}
}

func TestBooleanContainment(t *testing.T) {
	// Boolean queries (no answer variables): triangle ⊑ edge.
	tri := mustCQ(t, `E(X,Y), E(Y,Z), E(Z,X) -> Ans().`)
	edge := mustCQ(t, `E(X,Y) -> Ans().`)
	if ok, _ := tri.ContainedIn(edge); !ok {
		t.Error("a triangle contains an edge")
	}
	if ok, _ := edge.ContainedIn(tri); ok {
		t.Error("an edge does not contain a triangle")
	}
}

func TestRepeatedAnswerVariable(t *testing.T) {
	qxx := mustCQ(t, `E(X,X) -> Ans(X,X).`)
	qxy := mustCQ(t, `E(X,Y) -> Ans(X,Y).`)
	if ok, _ := qxx.ContainedIn(qxy); !ok {
		t.Error("diagonal answers are edge answers")
	}
	if ok, _ := qxy.ContainedIn(qxx); ok {
		t.Error("edge answers are not all diagonal")
	}
}

func TestEvaluateOn(t *testing.T) {
	q := mustCQ(t, `E(X,Y), E(Y,Z) -> Ans(X,Z).`)
	d := database.FromAtoms(parser.MustParseFacts(`E(a,b). E(b,c). E(c,d).`))
	ans := q.EvaluateOn(d)
	if len(ans) != 2 {
		t.Errorf("answers: %v", ans)
	}
}

func TestContainmentArityMismatch(t *testing.T) {
	q1 := mustCQ(t, `E(X,Y) -> Ans(X).`)
	q2 := mustCQ(t, `E(X,Y) -> Ans(X,Y).`)
	if _, err := q1.ContainedIn(q2); err == nil {
		t.Error("arity mismatch must error")
	}
}
