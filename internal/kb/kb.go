// Package kb implements knowledge-base querying (Section 7 of the paper):
// conjunctive queries over databases enriched with weakly frontier-guarded
// existential rules, the ACDom guarding of the query rule, the partial
// grounding pg(Σ, D), and the five-step decision pipeline
//
//	rew(Σ) → pg(rew(Σ), D) → dat(·) → bottom-up evaluation,
//
// which witnesses the 2ExpTime upper bound for combined complexity.
package kb

import (
	"fmt"

	"guardedrules/internal/annotate"
	"guardedrules/internal/budget"
	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/rewrite"
	"guardedrules/internal/saturate"
)

// CQ is a conjunctive query: answer variables and a conjunction of atoms.
type CQ struct {
	Answer []core.Term
	Atoms  []core.Atom
}

// Validate checks that the answer variables occur in the atoms.
func (q CQ) Validate() error {
	vars := core.VarsOf(q.Atoms)
	for _, v := range q.Answer {
		if !v.IsVar() {
			return fmt.Errorf("kb: answer term %v is not a variable", v)
		}
		if !vars.Has(v) {
			return fmt.Errorf("kb: answer variable %v does not occur in the query", v)
		}
	}
	return nil
}

// QueryRel is the output relation attached to knowledge-base queries.
const QueryRel = "QAns"

// Attach builds the knowledge-base query (Σ ∪ {α ∧ ACDom(~x) → Q(~x)}, Q)
// of Section 7: the ACDom atoms make the query rule weakly
// frontier-guarded regardless of α's shape.
func Attach(th *core.Theory, q CQ) (*core.Theory, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	out := th.Clone()
	body := make([]core.Literal, 0, len(q.Atoms)+len(q.Answer))
	for _, a := range q.Atoms {
		body = append(body, core.Pos(a))
	}
	for _, v := range q.Answer {
		body = append(body, core.Pos(core.NewAtom(core.ACDom, v)))
	}
	out.Add(&core.Rule{
		Body:  body,
		Head:  []core.Atom{core.NewAtom(QueryRel, q.Answer...)},
		Label: "cq",
	})
	return out, nil
}

// AnswerByChase answers the knowledge-base query by a bounded chase of
// Σ ∪ {α → Q(~x)}: sound always, complete when the result is saturated or
// the bound covers the relevant derivations.
func AnswerByChase(th *core.Theory, q CQ, d database.Store, opts chase.Options) ([][]core.Term, bool, error) {
	kbth, err := Attach(th, q)
	if err != nil {
		return nil, false, err
	}
	res, err := chase.Run(kbth, d, opts)
	if err != nil {
		if budget.IsBudget(err) && res != nil {
			// A budget-truncated chase still yields sound answers; return
			// the under-approximation alongside the typed error.
			return datalog.CollectAnswers(res.DB, QueryRel), false, err
		}
		return nil, false, err
	}
	return datalog.CollectAnswers(res.DB, QueryRel), res.Saturated, nil
}

// PartialGrounding computes pg(Σ, D) (Section 7, step 2): every variable
// of a rule occurring at some non-affected body position (a safe variable)
// is instantiated with constants of D in all possible ways. For a weakly
// guarded Σ the result is guarded.
func PartialGrounding(th *core.Theory, d database.Store, maxRules int) (*core.Theory, error) {
	if maxRules <= 0 {
		maxRules = 200_000
	}
	ap := classify.AffectedPositions(th)
	consts := d.Constants()
	out := core.NewTheory()
	for _, r := range th.Rules {
		unsafe := classify.Unsafe(r, ap)
		var safe []core.Term
		for v := range r.UVars() {
			if !unsafe.Has(v) {
				safe = append(safe, v)
			}
		}
		core.SortTerms(safe)
		var rec func(i int, s core.Subst) error
		rec = func(i int, s core.Subst) error {
			if i == len(safe) {
				if len(out.Rules) >= maxRules {
					return fmt.Errorf("kb: partial grounding exceeded %d rules", maxRules)
				}
				g := s.ApplyRule(r)
				g.Label = r.Label + "_pg"
				out.Add(g)
				return nil
			}
			for _, c := range consts {
				s[safe[i]] = c
				if err := rec(i+1, s); err != nil {
					return err
				}
			}
			delete(s, safe[i])
			return nil
		}
		if err := rec(0, core.Subst{}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PipelineStats reports the sizes along the Section 7 pipeline.
type PipelineStats struct {
	RewrittenRules int
	GroundedRules  int
	DatalogRules   int
}

// AnswerByPipeline answers the knowledge-base query with the paper's
// five-step procedure: rew (Theorem 2), partial grounding, dat
// (Theorem 3), bottom-up Datalog evaluation. The intermediate theories are
// exponential in general; the caps turn blow-ups into errors.
func AnswerByPipeline(th *core.Theory, q CQ, d database.Store, rewOpts rewrite.Options, satOpts saturate.Options) ([][]core.Term, *PipelineStats, error) {
	kbth, err := Attach(th, q)
	if err != nil {
		return nil, nil, err
	}
	// Step 1: rew(Σ), weakly guarded.
	res, err := annotate.RewriteWFG(kbth, rewOpts)
	if err != nil {
		return nil, nil, err
	}
	stats := &PipelineStats{RewrittenRules: len(res.Rewritten.Rules)}
	dRe := res.Reorder.Database(d)
	// Step 2: partial grounding; the result is guarded.
	pg, err := PartialGrounding(res.Rewritten, dRe, satOpts.MaxRules)
	if err != nil {
		return nil, nil, err
	}
	stats.GroundedRules = len(pg.Rules)
	// Guarded up to fully-ground safe rules; nearly guarded covers both.
	dat, _, err := saturate.NearlyGuardedToDatalog(pg, satOpts)
	if err != nil {
		return nil, nil, err
	}
	stats.DatalogRules = len(dat.Rules)
	// Steps 4-5: bottom-up evaluation (grounding is implicit in the
	// semi-naive fixpoint).
	fix, err := datalog.Eval(dat, dRe)
	if err != nil {
		return nil, nil, err
	}
	back := res.Reorder.UndoDatabase(fix)
	return datalog.CollectAnswers(back, QueryRel), stats, nil
}
