package guardedrules

// Persistence-layer benchmarks (DESIGN.md §13, EXPERIMENTS.md A11): the
// append-only segment store vs the plain in-memory database. Three
// costs matter for serving: journaled write throughput (the mutation
// path pays it per batch), cold-open latency (boot pays it per DB, from
// the WAL or from a compacted snapshot), and the clone cost of
// publishing an immutable served version. BENCH_store.json records the
// trajectory (see TestEmitStoreBenchJSON).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/gen"
	"guardedrules/internal/store/segment"
)

// storeBenchFacts builds the n-fact workload: a citation-graph-shaped
// corpus with enough distinct constants to exercise the intern log.
func storeBenchFacts(n int) []core.Atom {
	var out []core.Atom
	for i := 0; len(out) < n; i++ {
		p := core.Const(fmt.Sprintf("p%d", i))
		q := core.Const(fmt.Sprintf("p%d", (i*7+1)%(n/2+1)))
		out = append(out, core.NewAtom("Publication", p), core.NewAtom("cites", p, q))
	}
	return out[:n]
}

// seedSegmentDir populates a fresh store directory with n committed
// user facts and returns its path, its on-disk size in bytes, and the
// total fact count (user facts plus derived ACDom bookkeeping).
func seedSegmentDir(tb testing.TB, n int, compact bool) (string, int64, int) {
	tb.Helper()
	dir := tb.TempDir()
	s, err := segment.Open(dir, segment.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	for _, a := range storeBenchFacts(n) {
		s.Add(a)
	}
	if _, err := s.Commit(); err != nil {
		tb.Fatal(err)
	}
	wantLen := s.Len()
	if compact {
		if err := s.Compact(); err != nil {
			tb.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		tb.Fatal(err)
	}
	var bytes int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatal(err)
	}
	for _, e := range entries {
		fi, err := os.Stat(filepath.Join(dir, e.Name()))
		if err != nil {
			tb.Fatal(err)
		}
		bytes += fi.Size()
	}
	return dir, bytes, wantLen
}

// BenchmarkSegmentStore measures the persistent store against the
// in-memory baseline: journaled add+commit vs plain adds, cold open
// from the WAL vs from a compacted snapshot, and the served-version
// clone. CI emits the ns/op trajectory as the BENCH_store.json
// artifact.
func BenchmarkSegmentStore(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		facts := storeBenchFacts(n)
		b.Run(fmt.Sprintf("MemoryAdd/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := database.New()
				for _, a := range facts {
					d.Add(a)
				}
			}
		})
		b.Run(fmt.Sprintf("AddCommit/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				b.StartTimer()
				s, err := segment.Open(dir, segment.Options{})
				if err != nil {
					b.Fatal(err)
				}
				for _, a := range facts {
					s.Add(a)
				}
				if _, err := s.Commit(); err != nil {
					b.Fatal(err)
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, mode := range []struct {
			name    string
			compact bool
		}{{"ColdOpenWAL", false}, {"ColdOpenSnapshot", true}} {
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				dir, _, wantLen := seedSegmentDir(b, n, mode.compact)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s, err := segment.Open(dir, segment.Options{})
					if err != nil {
						b.Fatal(err)
					}
					if s.Len() != wantLen {
						b.Fatalf("opened %d facts, want %d", s.Len(), wantLen)
					}
					if err := s.Close(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("Clone/n=%d", n), func(b *testing.B) {
			dir, _, wantLen := seedSegmentDir(b, n, false)
			s, err := segment.Open(dir, segment.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s.Clone().Len() != wantLen {
					b.Fatal("bad clone")
				}
			}
		})
	}
}

// TestEmitStoreBenchJSON times the BenchmarkSegmentStore configurations
// once per configuration and writes BENCH_store.json: the write/open/
// clone latencies plus the on-disk footprint (WAL and compacted) per
// fact count, giving future PRs the persistence perf trajectory. Only
// runs when EMIT_BENCH=1 is set:
//
//	EMIT_BENCH=1 go test -run TestEmitStoreBenchJSON .
func TestEmitStoreBenchJSON(t *testing.T) {
	if os.Getenv("EMIT_BENCH") != "1" {
		t.Skip("set EMIT_BENCH=1 to refresh BENCH_store.json")
	}
	type entry struct {
		Name      string `json:"name"`
		N         int    `json:"n"`
		NsPerOp   int64  `json:"ns_per_op"`
		DiskBytes int64  `json:"disk_bytes,omitempty"`
	}
	report := struct {
		GoMaxProcs int     `json:"gomaxprocs"`
		Benchmarks []entry `json:"benchmarks"`
	}{GoMaxProcs: runtime.GOMAXPROCS(0)}
	const reps = 3
	best := func(f func()) int64 {
		var b time.Duration
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			f()
			if el := time.Since(t0); r == 0 || el < b {
				b = el
			}
		}
		return b.Nanoseconds()
	}
	for _, n := range []int{1_000, 10_000, 100_000} {
		facts := storeBenchFacts(n)
		report.Benchmarks = append(report.Benchmarks, entry{
			Name: fmt.Sprintf("SegmentStore/MemoryAdd/n=%d", n), N: n,
			NsPerOp: best(func() {
				d := database.New()
				for _, a := range facts {
					d.Add(a)
				}
			}),
		})
		report.Benchmarks = append(report.Benchmarks, entry{
			Name: fmt.Sprintf("SegmentStore/AddCommit/n=%d", n), N: n,
			NsPerOp: best(func() {
				s, err := segment.Open(t.TempDir(), segment.Options{})
				if err != nil {
					t.Fatal(err)
				}
				for _, a := range facts {
					s.Add(a)
				}
				if _, err := s.Commit(); err != nil {
					t.Fatal(err)
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			}),
		})
		for _, mode := range []struct {
			name    string
			compact bool
		}{{"ColdOpenWAL", false}, {"ColdOpenSnapshot", true}} {
			dir, bytes, wantLen := seedSegmentDir(t, n, mode.compact)
			report.Benchmarks = append(report.Benchmarks, entry{
				Name: fmt.Sprintf("SegmentStore/%s/n=%d", mode.name, n), N: n, DiskBytes: bytes,
				NsPerOp: best(func() {
					s, err := segment.Open(dir, segment.Options{})
					if err != nil {
						t.Fatal(err)
					}
					if s.Len() != wantLen {
						t.Fatalf("opened %d facts, want %d", s.Len(), wantLen)
					}
					if err := s.Close(); err != nil {
						t.Fatal(err)
					}
				}),
			})
		}
		dir, _, wantLen := seedSegmentDir(t, n, false)
		s, err := segment.Open(dir, segment.Options{})
		if err != nil {
			t.Fatal(err)
		}
		report.Benchmarks = append(report.Benchmarks, entry{
			Name: fmt.Sprintf("SegmentStore/Clone/n=%d", n), N: n,
			NsPerOp: best(func() {
				if s.Clone().Len() != wantLen {
					t.Fatal("bad clone")
				}
			}),
		})
		s.Close()
	}
	// The gen corpora keep the emitter honest about adversarial names:
	// one round-trip over NUL-embedding constants must survive framing.
	adv := gen.AdversarialNames(64, 1)
	dir := t.TempDir()
	s, err := segment.Open(dir, segment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range adv.UserFacts() {
		s.Add(a)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r, err := segment.Open(dir, segment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != adv.String() {
		t.Fatal("adversarial corpus did not survive the journal round-trip")
	}
	r.Close()

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_store.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_store.json (%d entries)", len(report.Benchmarks))
}
