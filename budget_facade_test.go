package guardedrules

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The facade re-exports the budget surface; a governed chase of a
// non-terminating theory must come back partial with a typed sentinel.
func TestFacadeBudgetedChase(t *testing.T) {
	th, err := ParseTheory(`
		N(X) -> exists Y. E(X,Y).
		E(X,Y) -> N(Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := ParseFacts("N(a).")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Chase(th, NewDatabase(facts...), ChaseOptions{Budget: &Budget{MaxFacts: 10}})
	if !errors.Is(err, ErrFactLimit) {
		t.Fatalf("err = %v, want ErrFactLimit", err)
	}
	if !IsBudgetError(err) {
		t.Fatal("IsBudgetError must recognize the sentinel")
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Usage.Facts == 0 {
		t.Fatalf("error must carry a usage snapshot, got %v", err)
	}
	if res == nil || !res.Truncated || res.DB.Len() == 0 {
		t.Fatalf("budgeted chase must return the partial database, got %+v", res)
	}
}

func TestFacadeChaseDeadline(t *testing.T) {
	th, err := ParseTheory("N(X) -> exists Y. E(X,Y). E(X,Y) -> N(Y).")
	if err != nil {
		t.Fatal(err)
	}
	facts, _ := ParseFacts("N(a).")
	_, err = Chase(th, NewDatabase(facts...), ChaseOptions{Budget: &Budget{Timeout: time.Nanosecond}})
	if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadline matching context.DeadlineExceeded", err)
	}
}

func TestFacadeBudgetedTranslation(t *testing.T) {
	th, err := ParseTheory(`
		R(X,Y), S(Y) -> exists Z. R(Y,Z).
		R(X,Y) -> S(Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := GuardedToDatalog(th, TranslateOptions{Budget: &Budget{MaxRules: 2}})
	if !errors.Is(err, ErrRuleLimit) {
		t.Fatalf("err = %v, want ErrRuleLimit", err)
	}
	if out == nil || len(out.Rules) == 0 {
		t.Fatal("exhausted translation must return the partial theory")
	}
}

// Panics escaping an engine surface as errors at the facade boundary.
func TestRecoverBoundary(t *testing.T) {
	f := func() (err error) {
		defer recoverToError(&err)
		panic("boom")
	}
	err := f()
	if err == nil || !errors.Is(err, err) { // non-nil, usable error
		t.Fatalf("panic must convert to an error, got %v", err)
	}
	if got := err.Error(); got != "guardedrules: internal panic: boom" {
		t.Fatalf("unexpected message %q", got)
	}
}
