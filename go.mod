module guardedrules

go 1.22
